//! SOP-based resynthesis: irredundant cover computation followed by
//! algebraic factoring.
//!
//! This is the workhorse used by refactoring (Algorithm 4 of the paper) and
//! as the fallback structure generator of the rewriting database: it works
//! for *any* network providing the [`GateBuilder`] interface because the
//! factored form only needs AND/OR/NOT, which every representation can
//! express.

use glsx_network::{GateBuilder, Signal};
use glsx_truth::{isop, Cube, TruthTable};

/// Synthesises `function` over the given `leaves` into `ntk` using an
/// irredundant sum-of-products cover and algebraic factoring, and returns
/// the root signal.
///
/// Both the function and its complement are covered; the cheaper cover (by
/// literal count) is factored and, if the complement was chosen, the result
/// is inverted — inverters are free in all graph representations of this
/// workspace.
///
/// # Panics
///
/// Panics if `leaves.len() != function.num_vars()`.
///
/// # Example
///
/// ```
/// use glsx_network::{Aig, GateBuilder, Network};
/// use glsx_network::simulation::simulate;
/// use glsx_synth::sop_resynthesize;
/// use glsx_truth::TruthTable;
///
/// let mut aig = Aig::new();
/// let leaves: Vec<_> = (0..3).map(|_| aig.create_pi()).collect();
/// let maj = TruthTable::from_hex(3, "e8")?;
/// let root = sop_resynthesize(&mut aig, &maj, &leaves);
/// aig.create_po(root);
/// assert_eq!(simulate(&aig)[0], maj);
/// # Ok::<(), glsx_truth::ParseTruthTableError>(())
/// ```
pub fn sop_resynthesize<N: GateBuilder>(
    ntk: &mut N,
    function: &TruthTable,
    leaves: &[Signal],
) -> Signal {
    assert_eq!(
        leaves.len(),
        function.num_vars(),
        "one leaf signal per function input"
    );
    if function.is_zero() {
        return ntk.get_constant(false);
    }
    if function.is_one() {
        return ntk.get_constant(true);
    }
    let positive = isop(function);
    let negative = isop(&!function);
    let pos_cost = positive.num_literals() + positive.num_cubes();
    let neg_cost = negative.num_literals() + negative.num_cubes();
    if pos_cost <= neg_cost {
        factor_cubes(ntk, positive.cubes(), leaves)
    } else {
        !factor_cubes(ntk, negative.cubes(), leaves)
    }
}

/// Builds a factored form of a cube cover (algebraic "quick factoring"):
/// the most frequent literal is divided out recursively; covers without a
/// repeated literal become a disjunction of cube conjunctions.
fn factor_cubes<N: GateBuilder>(ntk: &mut N, cubes: &[Cube], leaves: &[Signal]) -> Signal {
    if cubes.is_empty() {
        return ntk.get_constant(false);
    }
    // a tautological cube makes the whole cover constant one
    if cubes.iter().any(|c| c.num_literals() == 0) {
        return ntk.get_constant(true);
    }
    if cubes.len() == 1 {
        return build_cube(ntk, &cubes[0], leaves);
    }
    // find the literal occurring in the largest number of cubes
    let mut best: Option<(usize, bool, usize)> = None; // (var, polarity, count)
    for var in 0..leaves.len() {
        for polarity in [false, true] {
            let count = cubes
                .iter()
                .filter(|c| c.has_literal(var) && c.polarity(var) == polarity)
                .count();
            if count > 1 && best.is_none_or(|(_, _, c)| count > c) {
                best = Some((var, polarity, count));
            }
        }
    }
    match best {
        None => {
            // no sharing opportunity: OR together the individual cubes
            let terms: Vec<Signal> = cubes.iter().map(|c| build_cube(ntk, c, leaves)).collect();
            ntk.create_nary_or(&terms)
        }
        Some((var, polarity, _)) => {
            let literal = leaves[var].complement_if(!polarity);
            let quotient: Vec<Cube> = cubes
                .iter()
                .filter(|c| c.has_literal(var) && c.polarity(var) == polarity)
                .map(|c| c.without_literal(var))
                .collect();
            let remainder: Vec<Cube> = cubes
                .iter()
                .filter(|c| !(c.has_literal(var) && c.polarity(var) == polarity))
                .copied()
                .collect();
            let q = factor_cubes(ntk, &quotient, leaves);
            let divided = ntk.create_and(literal, q);
            if remainder.is_empty() {
                divided
            } else {
                let r = factor_cubes(ntk, &remainder, leaves);
                ntk.create_or(divided, r)
            }
        }
    }
}

/// Builds the conjunction of the literals of a single cube.
fn build_cube<N: GateBuilder>(ntk: &mut N, cube: &Cube, leaves: &[Signal]) -> Signal {
    let literals: Vec<Signal> = (0..leaves.len())
        .filter(|&v| cube.has_literal(v))
        .map(|v| leaves[v].complement_if(!cube.polarity(v)))
        .collect();
    ntk.create_nary_and(&literals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_network::simulation::simulate;
    use glsx_network::{Aig, Mig, Network, Xag};

    fn check_all_representations(tt: &TruthTable) {
        macro_rules! check {
            ($ty:ty) => {{
                let mut ntk = <$ty>::new();
                let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| ntk.create_pi()).collect();
                let root = sop_resynthesize(&mut ntk, tt, &leaves);
                ntk.create_po(root);
                assert_eq!(&simulate(&ntk)[0], tt, "{} failed for {tt}", <$ty>::NAME);
            }};
        }
        check!(Aig);
        check!(Xag);
        check!(Mig);
    }

    #[test]
    fn constants_and_single_cubes() {
        check_all_representations(&TruthTable::zero(3));
        check_all_representations(&TruthTable::one(3));
        let a = TruthTable::nth_var(3, 0);
        let c = TruthTable::nth_var(3, 2);
        check_all_representations(&(&a & &!&c));
    }

    #[test]
    fn majority_and_parity() {
        check_all_representations(&TruthTable::from_hex(3, "e8").unwrap());
        let a = TruthTable::nth_var(3, 0);
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        check_all_representations(&(&(&a ^ &b) ^ &c));
    }

    #[test]
    fn random_four_input_functions() {
        let mut state = 0xc0ff_ee11_u64;
        for _ in 0..15 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let tt = TruthTable::from_bits(4, state);
            check_all_representations(&tt);
        }
    }

    #[test]
    fn factoring_shares_common_literals() {
        // f = a&b | a&c | a&d should factor as a & (b | c | d): 4 gates in an AIG
        let a = TruthTable::nth_var(4, 0);
        let b = TruthTable::nth_var(4, 1);
        let c = TruthTable::nth_var(4, 2);
        let d = TruthTable::nth_var(4, 3);
        let f = (&a & &b) | (&a & &c) | (&a & &d);
        let mut aig = Aig::new();
        let leaves: Vec<Signal> = (0..4).map(|_| aig.create_pi()).collect();
        let root = sop_resynthesize(&mut aig, &f, &leaves);
        aig.create_po(root);
        assert_eq!(simulate(&aig)[0], f);
        assert!(
            aig.num_gates() <= 4,
            "factored form should share the literal a"
        );
    }
}
