//! Boolean chains: representation-independent synthesis recipes.
//!
//! A [`Chain`] describes a small multi-level structure (the output of exact
//! synthesis or of a recorded heuristic synthesis) independently of any
//! network type.  It can be simulated for verification and replayed into
//! any network implementing [`GateBuilder`], which is how the NPN rewriting
//! database instantiates cached structures in AIGs, XAGs, MIGs, …

use glsx_network::{GateBuilder, GateKind, Signal};
use glsx_truth::TruthTable;

/// A reference to an operand of a chain step: either one of the chain
/// inputs or the result of an earlier step, optionally complemented.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChainOperand {
    /// Index into the combined operand space: `0..num_inputs` are the chain
    /// inputs, `num_inputs..` are previous steps.
    pub index: usize,
    /// Whether the operand is complemented.
    pub complemented: bool,
}

impl ChainOperand {
    /// Creates an operand reference.
    pub fn new(index: usize, complemented: bool) -> Self {
        Self {
            index,
            complemented,
        }
    }
}

/// A single step (gate) of a chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    /// Gate kind of the step.
    pub kind: GateKind,
    /// Operands of the step (arity must match the kind).
    pub operands: Vec<ChainOperand>,
}

/// A Boolean chain over `num_inputs` inputs.
///
/// # Example
///
/// ```
/// use glsx_network::{Aig, GateBuilder, GateKind, Network};
/// use glsx_synth::{Chain, ChainOperand, ChainStep};
///
/// // chain computing (x0 & x1) over two inputs
/// let mut chain = Chain::new(2);
/// chain.push_step(ChainStep {
///     kind: GateKind::And,
///     operands: vec![ChainOperand::new(0, false), ChainOperand::new(1, false)],
/// });
/// chain.set_output(ChainOperand::new(2, false));
/// assert_eq!(chain.simulate().to_hex(), "8");
///
/// let mut aig = Aig::new();
/// let a = aig.create_pi();
/// let b = aig.create_pi();
/// let f = chain.replay(&mut aig, &[a, b]);
/// aig.create_po(f);
/// assert_eq!(aig.num_gates(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    num_inputs: usize,
    steps: Vec<ChainStep>,
    output: ChainOperand,
}

impl Chain {
    /// Creates an empty chain whose output is constant zero.
    pub fn new(num_inputs: usize) -> Self {
        Self {
            num_inputs,
            steps: Vec::new(),
            // by convention, an empty chain outputs constant zero via a
            // special operand index equal to usize::MAX
            output: ChainOperand::new(usize::MAX, false),
        }
    }

    /// Number of chain inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of steps (gates).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The steps of the chain.
    pub fn steps(&self) -> &[ChainStep] {
        &self.steps
    }

    /// The output operand.
    pub fn output(&self) -> ChainOperand {
        self.output
    }

    /// Appends a step and returns its operand index.
    ///
    /// # Panics
    ///
    /// Panics if an operand refers to a not-yet-defined step or the operand
    /// count does not match the gate kind's arity.
    pub fn push_step(&mut self, step: ChainStep) -> usize {
        if let Some(arity) = step.kind.arity() {
            assert_eq!(
                step.operands.len(),
                arity,
                "operand count must match gate arity"
            );
        }
        let new_index = self.num_inputs + self.steps.len();
        for op in &step.operands {
            assert!(
                op.index < new_index,
                "operands must refer to inputs or earlier steps"
            );
        }
        self.steps.push(step);
        new_index
    }

    /// Sets the output operand.
    pub fn set_output(&mut self, output: ChainOperand) {
        self.output = output;
    }

    /// Simulates the chain, returning its function over `num_inputs`
    /// variables.
    pub fn simulate(&self) -> TruthTable {
        let n = self.num_inputs;
        let mut values: Vec<TruthTable> = (0..n).map(|i| TruthTable::nth_var(n, i)).collect();
        for step in &self.steps {
            let inputs: Vec<TruthTable> = step
                .operands
                .iter()
                .map(|op| {
                    let v = &values[op.index];
                    if op.complemented {
                        !v
                    } else {
                        v.clone()
                    }
                })
                .collect();
            let result = match step.kind {
                GateKind::And => &inputs[0] & &inputs[1],
                GateKind::Xor => &inputs[0] ^ &inputs[1],
                GateKind::Maj => TruthTable::maj(&inputs[0], &inputs[1], &inputs[2]),
                GateKind::Xor3 => &(&inputs[0] ^ &inputs[1]) ^ &inputs[2],
                other => panic!("chains cannot contain gates of kind {other}"),
            };
            values.push(result);
        }
        if self.output.index == usize::MAX {
            let zero = TruthTable::zero(n);
            return if self.output.complemented {
                !zero
            } else {
                zero
            };
        }
        let out = &values[self.output.index];
        if self.output.complemented {
            !out
        } else {
            out.clone()
        }
    }

    /// Replays the chain into a network, using `leaves` as the chain
    /// inputs, and returns the signal of the chain output.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != num_inputs()`.
    pub fn replay<N: GateBuilder>(&self, ntk: &mut N, leaves: &[Signal]) -> Signal {
        assert_eq!(
            leaves.len(),
            self.num_inputs,
            "one leaf signal per chain input"
        );
        let mut signals: Vec<Signal> = leaves.to_vec();
        for step in &self.steps {
            let operands: Vec<Signal> = step
                .operands
                .iter()
                .map(|op| signals[op.index].complement_if(op.complemented))
                .collect();
            let result = ntk.create_gate(step.kind, &operands);
            signals.push(result);
        }
        if self.output.index == usize::MAX {
            return ntk.get_constant(self.output.complemented);
        }
        signals[self.output.index].complement_if(self.output.complemented)
    }

    /// Creates a chain that outputs a constant.
    pub fn constant(num_inputs: usize, value: bool) -> Self {
        let mut chain = Self::new(num_inputs);
        chain.output = ChainOperand::new(usize::MAX, value);
        chain
    }

    /// Creates a chain that outputs (a possibly complemented) input
    /// projection.
    pub fn projection(num_inputs: usize, input: usize, complemented: bool) -> Self {
        let mut chain = Self::new(num_inputs);
        chain.output = ChainOperand::new(input, complemented);
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_network::simulation::simulate;
    use glsx_network::{Mig, Network, Xag};

    fn maj_chain() -> Chain {
        let mut chain = Chain::new(3);
        let ab = chain.push_step(ChainStep {
            kind: GateKind::And,
            operands: vec![ChainOperand::new(0, false), ChainOperand::new(1, false)],
        });
        let aob = chain.push_step(ChainStep {
            kind: GateKind::And,
            operands: vec![ChainOperand::new(0, true), ChainOperand::new(1, true)],
        });
        let c_or = chain.push_step(ChainStep {
            kind: GateKind::And,
            operands: vec![ChainOperand::new(2, false), ChainOperand::new(aob, true)],
        });
        let out = chain.push_step(ChainStep {
            kind: GateKind::And,
            operands: vec![ChainOperand::new(ab, true), ChainOperand::new(c_or, true)],
        });
        chain.set_output(ChainOperand::new(out, true));
        chain
    }

    #[test]
    fn simulate_majority_chain() {
        let chain = maj_chain();
        assert_eq!(chain.simulate().to_hex(), "e8");
        assert_eq!(chain.num_steps(), 4);
        assert_eq!(chain.num_inputs(), 3);
    }

    #[test]
    fn replay_into_different_networks() {
        let chain = maj_chain();
        let expected = chain.simulate();

        let mut xag = Xag::new();
        let leaves: Vec<Signal> = (0..3).map(|_| xag.create_pi()).collect();
        let out = chain.replay(&mut xag, &leaves);
        xag.create_po(out);
        assert_eq!(simulate(&xag)[0], expected);

        let mut mig = Mig::new();
        let leaves: Vec<Signal> = (0..3).map(|_| mig.create_pi()).collect();
        let out = chain.replay(&mut mig, &leaves);
        mig.create_po(out);
        assert_eq!(simulate(&mig)[0], expected);
    }

    #[test]
    fn constants_and_projections() {
        assert!(Chain::constant(3, false).simulate().is_zero());
        assert!(Chain::constant(3, true).simulate().is_one());
        assert_eq!(
            Chain::projection(3, 1, false).simulate(),
            TruthTable::nth_var(3, 1)
        );
        assert_eq!(
            Chain::projection(3, 2, true).simulate(),
            !TruthTable::nth_var(3, 2)
        );
    }

    #[test]
    #[should_panic]
    fn forward_references_are_rejected() {
        let mut chain = Chain::new(2);
        chain.push_step(ChainStep {
            kind: GateKind::And,
            operands: vec![ChainOperand::new(0, false), ChainOperand::new(5, false)],
        });
    }

    #[test]
    fn maj_steps_in_chain() {
        let mut chain = Chain::new(3);
        let m = chain.push_step(ChainStep {
            kind: GateKind::Maj,
            operands: vec![
                ChainOperand::new(0, false),
                ChainOperand::new(1, false),
                ChainOperand::new(2, false),
            ],
        });
        chain.set_output(ChainOperand::new(m, false));
        assert_eq!(chain.simulate().to_hex(), "e8");
    }
}
