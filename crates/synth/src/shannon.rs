//! Shannon-decomposition resynthesis.
//!
//! A simple but fully generic resynthesis engine: the function is
//! decomposed recursively as `f = x ? f_x : f_!x` with memoisation of
//! cofactors, producing a multiplexer tree in whatever gates the target
//! representation offers.  Used as a baseline resynthesis engine and in
//! ablation studies against SOP factoring and exact synthesis.

use glsx_network::{GateBuilder, Signal};
use glsx_truth::TruthTable;
use std::collections::HashMap;

/// Synthesises `function` over `leaves` by recursive Shannon decomposition
/// and returns the root signal.
///
/// Identical cofactors are shared through a memoisation table, so the
/// result is a (reduced) multiplexer tree rather than a full binary tree.
///
/// # Panics
///
/// Panics if `leaves.len() != function.num_vars()`.
///
/// # Example
///
/// ```
/// use glsx_network::{GateBuilder, Network, Xag};
/// use glsx_network::simulation::simulate;
/// use glsx_synth::shannon_resynthesize;
/// use glsx_truth::TruthTable;
///
/// let mut xag = Xag::new();
/// let leaves: Vec<_> = (0..4).map(|_| xag.create_pi()).collect();
/// let f = TruthTable::from_hex(4, "cafe")?;
/// let root = shannon_resynthesize(&mut xag, &f, &leaves);
/// xag.create_po(root);
/// assert_eq!(simulate(&xag)[0], f);
/// # Ok::<(), glsx_truth::ParseTruthTableError>(())
/// ```
pub fn shannon_resynthesize<N: GateBuilder>(
    ntk: &mut N,
    function: &TruthTable,
    leaves: &[Signal],
) -> Signal {
    assert_eq!(
        leaves.len(),
        function.num_vars(),
        "one leaf signal per function input"
    );
    let mut memo: HashMap<TruthTable, Signal> = HashMap::new();
    shannon_rec(ntk, function, leaves, &mut memo)
}

// the projection scan pairs variable indices with leaf positions
#[allow(clippy::needless_range_loop)]
fn shannon_rec<N: GateBuilder>(
    ntk: &mut N,
    function: &TruthTable,
    leaves: &[Signal],
    memo: &mut HashMap<TruthTable, Signal>,
) -> Signal {
    if function.is_zero() {
        return ntk.get_constant(false);
    }
    if function.is_one() {
        return ntk.get_constant(true);
    }
    if let Some(&signal) = memo.get(function) {
        return signal;
    }
    // projection (possibly complemented)?
    for v in 0..function.num_vars() {
        if *function == TruthTable::nth_var(function.num_vars(), v) {
            return leaves[v];
        }
        if *function == !TruthTable::nth_var(function.num_vars(), v) {
            return !leaves[v];
        }
    }
    // decompose on the highest variable in the support
    let var = (0..function.num_vars())
        .rev()
        .find(|&v| function.has_var(v))
        .expect("non-constant function has a support variable");
    let cof0 = function.cofactor0(var);
    let cof1 = function.cofactor1(var);
    let then_s = shannon_rec(ntk, &cof1, leaves, memo);
    let else_s = shannon_rec(ntk, &cof0, leaves, memo);
    let result = ntk.create_ite(leaves[var], then_s, else_s);
    memo.insert(function.clone(), result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_network::simulation::simulate;
    use glsx_network::{Aig, Mig, Xmg};

    fn check<N: GateBuilder>(tt: &TruthTable) -> usize {
        let mut ntk = N::new();
        let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| ntk.create_pi()).collect();
        let root = shannon_resynthesize(&mut ntk, tt, &leaves);
        ntk.create_po(root);
        assert_eq!(&simulate(&ntk)[0], tt);
        ntk.num_gates()
    }

    #[test]
    fn simple_functions() {
        check::<Aig>(&TruthTable::zero(2));
        check::<Aig>(&TruthTable::one(2));
        check::<Aig>(&TruthTable::nth_var(3, 1));
        check::<Aig>(&!TruthTable::nth_var(3, 1));
        check::<Mig>(&TruthTable::from_hex(3, "e8").unwrap());
        check::<Xmg>(&TruthTable::from_hex(3, "96").unwrap());
    }

    #[test]
    fn random_functions_in_all_representations() {
        let mut state = 0x1111_2222_u64;
        for _ in 0..10 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let tt = TruthTable::from_bits(4, state);
            check::<Aig>(&tt);
            check::<Mig>(&tt);
            check::<Xmg>(&tt);
        }
    }

    #[test]
    fn memoisation_shares_equal_cofactors() {
        // f = (a ? g : g) where the two branches are equal collapses
        let a = TruthTable::nth_var(3, 0);
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        // symmetric function: both cofactors w.r.t. c contain b&a patterns
        let f = (&a & &b) ^ &c;
        let gates = check::<Aig>(&f);
        assert!(gates <= 6);
    }
}
