//! # glsx-synth
//!
//! Resynthesis engines for the generic logic synthesis library — the
//! representation-specific "performance tweak" layer of the stacked
//! architecture, packaged behind representation-independent interfaces:
//!
//! * [`Chain`] — representation-independent Boolean chains that can be
//!   simulated and replayed into any network ([`Chain::replay`]),
//! * [`exact_chain_synthesis`] — SAT-based exact synthesis of size-optimal
//!   chains for AND/XOR gate sets (the paper's Section 2.2.2),
//! * [`sop_resynthesize`] — irredundant SOP computation plus algebraic
//!   factoring (the resynthesis core of refactoring),
//! * [`shannon_resynthesize`] — Shannon-decomposition resynthesis,
//! * [`NpnDatabase`] — a lazily computed database of replacement structures
//!   per NPN class used by DAG-aware rewriting, and the [`Resynthesis`]
//!   trait the optimisation algorithms are parameterised over.
//!
//! # Example
//!
//! ```
//! use glsx_network::{GateBuilder, Mig, Network};
//! use glsx_network::simulation::simulate;
//! use glsx_synth::{NpnDatabase, Resynthesis};
//! use glsx_truth::TruthTable;
//!
//! // the same database instance serves any representation
//! let mut db = NpnDatabase::new();
//! let mut mig = Mig::new();
//! let leaves: Vec<_> = (0..4).map(|_| mig.create_pi()).collect();
//! let f = TruthTable::from_hex(4, "1ee1")?;
//! let root = db.resynthesize(&mut mig, &f, &leaves).expect("realisable");
//! mig.create_po(root);
//! assert_eq!(simulate(&mig)[0], f);
//! # Ok::<(), glsx_truth::ParseTruthTableError>(())
//! ```

mod chain;
mod exact;
mod resynthesis;
mod shannon;
mod sop;

pub use chain::{Chain, ChainOperand, ChainStep};
pub use exact::{exact_chain_synthesis, ChainGateSet, ExactSynthesisParams};
pub use resynthesis::{
    record_chain, NpnDatabase, NpnDatabaseParams, Resynthesis, ShannonResynthesis, SopResynthesis,
};
pub use shannon::shannon_resynthesize;
pub use sop::sop_resynthesize;
