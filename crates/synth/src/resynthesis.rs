//! The resynthesis interface and the NPN rewriting database.
//!
//! Rewriting and refactoring do not care *how* a replacement structure for
//! a cut function is obtained; they only need a [`Resynthesis`] engine that
//! turns a truth table plus leaf signals into new nodes of the target
//! network.  This module provides the trait, engines based on SOP
//! factoring and Shannon decomposition, and [`NpnDatabase`] — a cache of
//! per-NPN-class chains (computed by SAT-based exact synthesis with a
//! heuristic fallback) that can be replayed into any representation.

use crate::chain::{Chain, ChainOperand, ChainStep};
use crate::exact::{exact_chain_synthesis, ExactSynthesisParams};
use crate::shannon::shannon_resynthesize;
use crate::sop::sop_resynthesize;
use glsx_network::{GateBuilder, Network, NodeId, Signal, Xag};
use glsx_truth::{npn_canonize, NpnTransform, TruthTable};
use std::collections::HashMap;

/// A resynthesis engine: creates nodes in `ntk` computing `function` over
/// the `leaves` and returns the root signal, or `None` if the engine cannot
/// realise the function.
pub trait Resynthesis<N: GateBuilder> {
    /// Synthesises `function` over `leaves` into `ntk`.
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal>;
}

/// Resynthesis by irredundant SOP computation and algebraic factoring
/// (works for every representation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SopResynthesis;

impl<N: GateBuilder> Resynthesis<N> for SopResynthesis {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        Some(sop_resynthesize(ntk, function, leaves))
    }
}

/// Resynthesis by recursive Shannon decomposition (works for every
/// representation).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShannonResynthesis;

impl<N: GateBuilder> Resynthesis<N> for ShannonResynthesis {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        Some(shannon_resynthesize(ntk, function, leaves))
    }
}

/// Records the logic of `root` (over the primary inputs of `ntk`) as a
/// representation-independent [`Chain`].
///
/// The primary inputs of `ntk` become the chain inputs in order; only the
/// transitive fanin of `root` is recorded.
pub fn record_chain<N: Network>(ntk: &N, root: Signal) -> Chain {
    let mut chain = Chain::new(ntk.num_pis());
    let mut map: HashMap<NodeId, ChainOperand> = HashMap::new();
    map.insert(0, ChainOperand::new(usize::MAX, false));
    for (i, pi) in ntk.pi_nodes().iter().enumerate() {
        map.insert(*pi, ChainOperand::new(i, false));
    }
    for node in ntk.gate_nodes() {
        let operands: Vec<ChainOperand> = ntk
            .fanins(node)
            .iter()
            .map(|f| {
                let base = map[&f.node()];
                ChainOperand::new(base.index, base.complemented ^ f.is_complemented())
            })
            .collect();
        // constant fanins cannot be expressed in a chain operand; they are
        // not produced by the resynthesis engines used to record chains
        debug_assert!(operands.iter().all(|op| op.index != usize::MAX));
        let index = chain.push_step(ChainStep {
            kind: ntk.gate_kind(node),
            operands,
        });
        map.insert(node, ChainOperand::new(index, false));
    }
    let base = map[&root.node()];
    chain.set_output(ChainOperand::new(
        base.index,
        base.complemented ^ root.is_complemented(),
    ));
    chain
}

/// Configuration of the [`NpnDatabase`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NpnDatabaseParams {
    /// Use SAT-based exact synthesis when populating a class (otherwise
    /// only the heuristic structure generator is used).
    pub use_exact_synthesis: bool,
    /// Parameters of the exact synthesis calls.
    pub exact: ExactSynthesisParams,
}

/// A lazily computed database of replacement structures indexed by NPN
/// class.
///
/// For each canonical representative encountered, a [`Chain`] is computed
/// once (by exact synthesis if enabled and successful, otherwise by SOP
/// factoring recorded into a scratch XAG) and cached.  Because chains are
/// representation-independent, the same database instance can serve
/// rewriting on AIGs, XAGs, MIGs and XMGs, with the replay step mapping
/// chain gates onto the native primitives of the target network.
#[derive(Debug, Default)]
pub struct NpnDatabase {
    params: NpnDatabaseParams,
    cache: HashMap<TruthTable, Chain>,
    /// Memoised canonisation results keyed by the *original* function.
    /// Cut functions repeat massively across candidates of one pass, and
    /// exhaustive NPN canonisation (all `2^{n+1} n!` transforms) is far
    /// more expensive than a hash lookup, so this cache dominates the
    /// rewrite loop's speed.  Bounded by the number of distinct cut
    /// functions (≤ 2^16 for 4-input cuts).
    canon_cache: HashMap<TruthTable, (TruthTable, NpnTransform)>,
}

impl NpnDatabase {
    /// Creates an empty database with default parameters (heuristic
    /// structures only).
    pub fn new() -> Self {
        Self::with_params(NpnDatabaseParams::default())
    }

    /// Creates an empty database with the given parameters.
    pub fn with_params(params: NpnDatabaseParams) -> Self {
        Self {
            params,
            cache: HashMap::new(),
            canon_cache: HashMap::new(),
        }
    }

    /// Creates a database that uses SAT-based exact synthesis to populate
    /// classes.
    pub fn with_exact_synthesis(exact: ExactSynthesisParams) -> Self {
        Self::with_params(NpnDatabaseParams {
            use_exact_synthesis: true,
            exact,
        })
    }

    /// Number of NPN classes cached so far.
    pub fn num_classes(&self) -> usize {
        self.cache.len()
    }

    /// The database's configuration, for spawning compatible per-thread
    /// databases ([`NpnDatabase::with_params`]) whose results this one can
    /// later [`absorb`](Self::absorb).
    pub fn params(&self) -> NpnDatabaseParams {
        self.params
    }

    /// Merges the cached classes and canonisation results of `other` into
    /// this database, consuming it.  Both caches are pure functions of
    /// their keys (NPN canonisation is exhaustive over a fixed transform
    /// order, chain computation is deterministic), so for databases with
    /// equal parameters the merge is order-independent: entries present on
    /// both sides are identical and the merged database answers every
    /// future query exactly as either source would have.  This is how
    /// per-thread databases warmed by parallel evaluation drain into the
    /// main database between passes.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the parameters match; merging databases with
    /// different synthesis settings would make cache contents
    /// parameter-dependent.
    pub fn absorb(&mut self, other: NpnDatabase) {
        debug_assert_eq!(
            format!("{:?}", self.params),
            format!("{:?}", other.params),
            "absorbed databases must share parameters"
        );
        if self.cache.is_empty() && self.canon_cache.is_empty() {
            self.cache = other.cache;
            self.canon_cache = other.canon_cache;
            return;
        }
        for (key, chain) in other.cache {
            self.cache.entry(key).or_insert(chain);
        }
        for (key, canon) in other.canon_cache {
            self.canon_cache.entry(key).or_insert(canon);
        }
    }

    /// Returns the chain stored for the NPN representative of `function`,
    /// computing and caching it if necessary.
    pub fn chain_for(&mut self, canonical: &TruthTable) -> &Chain {
        chain_for_in(&mut self.cache, &self.params, canonical)
    }

    /// Warms both caches for `function` without touching a network and
    /// returns the number of chain steps its NPN class needs (0 for
    /// constants) — the candidate-size estimate the windowed rewriting
    /// workers use against a frozen network.  Warming computes exactly
    /// the entries [`resynthesize`](Resynthesis::resynthesize) would,
    /// and both are pure functions of the key, so a private per-thread
    /// database warmed here and later [`absorb`](Self::absorb)ed
    /// answers exactly as if the main database had served the query
    /// itself.
    pub fn warm(&mut self, function: &TruthTable) -> usize {
        if function.is_const() {
            return 0;
        }
        if !self.canon_cache.contains_key(function) {
            let computed = npn_canonize(function);
            self.canon_cache.insert(function.clone(), computed);
        }
        let (canonical, _) = &self.canon_cache[function];
        chain_for_in(&mut self.cache, &self.params, canonical).num_steps()
    }
}

/// [`NpnDatabase::chain_for`] as a free function over the chain cache, so
/// callers holding a borrow of another database field (the canonisation
/// cache) can still resolve chains.
fn chain_for_in<'c>(
    cache: &'c mut HashMap<TruthTable, Chain>,
    params: &NpnDatabaseParams,
    canonical: &TruthTable,
) -> &'c Chain {
    if !cache.contains_key(canonical) {
        let chain = compute_chain(params, canonical);
        debug_assert_eq!(chain.simulate(), *canonical);
        cache.insert(canonical.clone(), chain);
    }
    &cache[canonical]
}

fn compute_chain(params: &NpnDatabaseParams, canonical: &TruthTable) -> Chain {
    if params.use_exact_synthesis {
        if let Some(chain) = exact_chain_synthesis(canonical, &params.exact) {
            return chain;
        }
    }
    heuristic_chain(canonical)
}

fn heuristic_chain(canonical: &TruthTable) -> Chain {
    let mut scratch = Xag::new();
    let leaves: Vec<Signal> = (0..canonical.num_vars())
        .map(|_| scratch.create_pi())
        .collect();
    let root = sop_resynthesize(&mut scratch, canonical, &leaves);
    record_chain(&scratch, root)
}

impl<N: GateBuilder, R: Resynthesis<N>> Resynthesis<N> for &mut R {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        (**self).resynthesize(ntk, function, leaves)
    }
}

impl<N: GateBuilder> Resynthesis<N> for NpnDatabase {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        if function.is_const() {
            return Some(ntk.get_constant(function.is_one()));
        }
        if !self.canon_cache.contains_key(function) {
            let computed = npn_canonize(function);
            self.canon_cache.insert(function.clone(), computed);
        }
        // hit path: probe by reference — no key clone, no table clone (the
        // chain cache is resolved through a free function so the borrow of
        // the canonisation cache can be held across it)
        let (canonical, transform) = &self.canon_cache[function];
        // chain input j is canonical variable y_j; original input i maps to
        // y_{perm[i]} with the recorded input negation
        let mut mapped = vec![Signal::constant(false); function.num_vars()];
        for (i, &leaf) in leaves.iter().enumerate() {
            mapped[transform.perm[i]] = leaf.complement_if(transform.input_negated(i));
        }
        let chain = chain_for_in(&mut self.cache, &self.params, canonical);
        let out = chain.replay(ntk, &mapped);
        Some(out.complement_if(transform.output_negation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_network::simulation::simulate;
    use glsx_network::{Aig, Mig, Network};

    fn check_resynthesis<N, R>(mut engine: R, tt: &TruthTable)
    where
        N: GateBuilder,
        R: Resynthesis<N>,
    {
        let mut ntk = N::new();
        let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| ntk.create_pi()).collect();
        let root = engine
            .resynthesize(&mut ntk, tt, &leaves)
            .expect("engines in this test always succeed");
        ntk.create_po(root);
        assert_eq!(&simulate(&ntk)[0], tt);
    }

    #[test]
    fn record_chain_roundtrip() {
        let mut xag = Xag::new();
        let a = xag.create_pi();
        let b = xag.create_pi();
        let c = xag.create_pi();
        let t = xag.create_and(a, !b);
        let root = xag.create_xor(t, c);
        let chain = record_chain(&xag, !root);
        let expected = !simulate(&{
            let mut tmp = xag.clone();
            tmp.create_po(root);
            tmp
        })[0]
            .clone();
        assert_eq!(chain.simulate(), expected);
    }

    #[test]
    fn npn_database_serves_multiple_representations() {
        let mut db = NpnDatabase::new();
        let functions = [
            TruthTable::from_hex(3, "e8").unwrap(),
            TruthTable::from_hex(3, "96").unwrap(),
            TruthTable::from_hex(4, "cafe").unwrap(),
            TruthTable::from_hex(4, "1ee1").unwrap(),
        ];
        for tt in &functions {
            // resynthesize into an AIG and an MIG from the same database
            let mut aig = Aig::new();
            let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| aig.create_pi()).collect();
            let root = Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, tt, &leaves).unwrap();
            aig.create_po(root);
            assert_eq!(&simulate(&aig)[0], tt);

            let mut mig = Mig::new();
            let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| mig.create_pi()).collect();
            let root = Resynthesis::<Mig>::resynthesize(&mut db, &mut mig, tt, &leaves).unwrap();
            mig.create_po(root);
            assert_eq!(&simulate(&mig)[0], tt);
        }
        // all NPN-equivalent functions share one cache entry
        let before = db.num_classes();
        let flipped = TruthTable::from_hex(3, "e8").unwrap().flip(0);
        check_resynthesis::<Aig, _>(&mut db as &mut NpnDatabase, &flipped);
        assert_eq!(db.num_classes(), before);
    }

    #[test]
    fn npn_database_with_exact_synthesis_uses_optimal_structures() {
        let mut db = NpnDatabase::with_exact_synthesis(ExactSynthesisParams {
            max_steps: 5,
            ..ExactSynthesisParams::default()
        });
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let chain = db.chain_for(&npn_canonize(&maj).0).clone();
        assert!(chain.num_steps() <= 4);
        assert_eq!(db.num_classes(), 1);
    }

    /// A database that absorbed per-thread warm-ups answers every query
    /// exactly as a cold database would — the property the windowed
    /// rewrite merge phase relies on.
    #[test]
    fn absorbed_databases_answer_like_cold_ones() {
        let functions = [
            TruthTable::from_hex(3, "e8").unwrap(),
            TruthTable::from_hex(3, "96").unwrap(),
            TruthTable::from_hex(4, "cafe").unwrap(),
            TruthTable::from_hex(4, "1ee1").unwrap(),
        ];
        // two "workers" each warm a private database on an overlapping
        // half of the workload
        let mut main = NpnDatabase::new();
        let mut workers = [
            NpnDatabase::with_params(main.params()),
            NpnDatabase::with_params(main.params()),
        ];
        for (i, db) in workers.iter_mut().enumerate() {
            for tt in &functions[i..i + 3] {
                check_resynthesis::<Aig, _>(&mut *db, tt);
            }
        }
        let [first, second] = workers;
        main.absorb(first);
        let classes_after_first = main.num_classes();
        main.absorb(second);
        assert!(main.num_classes() >= classes_after_first);

        // replay every function through the warm database and a cold one;
        // the resulting networks must be identical
        for tt in &functions {
            let build = |db: &mut NpnDatabase| {
                let mut aig = Aig::new();
                let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| aig.create_pi()).collect();
                let root = Resynthesis::<Aig>::resynthesize(db, &mut aig, tt, &leaves).unwrap();
                aig.create_po(root);
                aig
            };
            let warm = build(&mut main);
            let cold = build(&mut NpnDatabase::new());
            assert_eq!(warm.num_gates(), cold.num_gates(), "{tt:?}");
            assert_eq!(warm.po_signals(), cold.po_signals(), "{tt:?}");
            assert_eq!(&simulate(&warm)[0], tt);
        }
    }

    #[test]
    fn sop_and_shannon_engines_are_resynthesis_impls() {
        let tt = TruthTable::from_hex(4, "8241").unwrap();
        check_resynthesis::<Aig, _>(SopResynthesis, &tt);
        check_resynthesis::<Aig, _>(ShannonResynthesis, &tt);
        check_resynthesis::<Mig, _>(SopResynthesis, &tt);
        check_resynthesis::<Mig, _>(ShannonResynthesis, &tt);
    }

    #[test]
    fn constants_resynthesize_to_constants() {
        let mut db = NpnDatabase::new();
        let mut aig = Aig::new();
        let leaves: Vec<Signal> = (0..3).map(|_| aig.create_pi()).collect();
        let zero =
            Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, &TruthTable::zero(3), &leaves)
                .unwrap();
        assert_eq!(zero, aig.get_constant(false));
        let one = Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, &TruthTable::one(3), &leaves)
            .unwrap();
        assert_eq!(one, aig.get_constant(true));
        assert_eq!(aig.num_gates(), 0);
    }
}
