//! The resynthesis interface and the NPN rewriting database.
//!
//! Rewriting and refactoring do not care *how* a replacement structure for
//! a cut function is obtained; they only need a [`Resynthesis`] engine that
//! turns a truth table plus leaf signals into new nodes of the target
//! network.  This module provides the trait, engines based on SOP
//! factoring and Shannon decomposition, and [`NpnDatabase`] — a cache of
//! per-NPN-class chains (computed by SAT-based exact synthesis with a
//! heuristic fallback) that can be replayed into any representation.

use crate::chain::{Chain, ChainOperand, ChainStep};
use crate::exact::{exact_chain_synthesis, ExactSynthesisParams};
use crate::shannon::shannon_resynthesize;
use crate::sop::sop_resynthesize;
use glsx_network::{GateBuilder, Network, NodeId, Signal, Xag};
use glsx_truth::{npn_canonize, NpnTransform, TruthTable};
use std::collections::HashMap;

/// A resynthesis engine: creates nodes in `ntk` computing `function` over
/// the `leaves` and returns the root signal, or `None` if the engine cannot
/// realise the function.
pub trait Resynthesis<N: GateBuilder> {
    /// Synthesises `function` over `leaves` into `ntk`.
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal>;
}

/// Resynthesis by irredundant SOP computation and algebraic factoring
/// (works for every representation).
#[derive(Clone, Copy, Debug, Default)]
pub struct SopResynthesis;

impl<N: GateBuilder> Resynthesis<N> for SopResynthesis {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        Some(sop_resynthesize(ntk, function, leaves))
    }
}

/// Resynthesis by recursive Shannon decomposition (works for every
/// representation).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShannonResynthesis;

impl<N: GateBuilder> Resynthesis<N> for ShannonResynthesis {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        Some(shannon_resynthesize(ntk, function, leaves))
    }
}

/// Records the logic of `root` (over the primary inputs of `ntk`) as a
/// representation-independent [`Chain`].
///
/// The primary inputs of `ntk` become the chain inputs in order; only the
/// transitive fanin of `root` is recorded.
pub fn record_chain<N: Network>(ntk: &N, root: Signal) -> Chain {
    let mut chain = Chain::new(ntk.num_pis());
    let mut map: HashMap<NodeId, ChainOperand> = HashMap::new();
    map.insert(0, ChainOperand::new(usize::MAX, false));
    for (i, pi) in ntk.pi_nodes().iter().enumerate() {
        map.insert(*pi, ChainOperand::new(i, false));
    }
    for node in ntk.gate_nodes() {
        let operands: Vec<ChainOperand> = ntk
            .fanins(node)
            .iter()
            .map(|f| {
                let base = map[&f.node()];
                ChainOperand::new(base.index, base.complemented ^ f.is_complemented())
            })
            .collect();
        // constant fanins cannot be expressed in a chain operand; they are
        // not produced by the resynthesis engines used to record chains
        debug_assert!(operands.iter().all(|op| op.index != usize::MAX));
        let index = chain.push_step(ChainStep {
            kind: ntk.gate_kind(node),
            operands,
        });
        map.insert(node, ChainOperand::new(index, false));
    }
    let base = map[&root.node()];
    chain.set_output(ChainOperand::new(
        base.index,
        base.complemented ^ root.is_complemented(),
    ));
    chain
}

/// Configuration of the [`NpnDatabase`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NpnDatabaseParams {
    /// Use SAT-based exact synthesis when populating a class (otherwise
    /// only the heuristic structure generator is used).
    pub use_exact_synthesis: bool,
    /// Parameters of the exact synthesis calls.
    pub exact: ExactSynthesisParams,
}

/// A lazily computed database of replacement structures indexed by NPN
/// class.
///
/// For each canonical representative encountered, a [`Chain`] is computed
/// once (by exact synthesis if enabled and successful, otherwise by SOP
/// factoring recorded into a scratch XAG) and cached.  Because chains are
/// representation-independent, the same database instance can serve
/// rewriting on AIGs, XAGs, MIGs and XMGs, with the replay step mapping
/// chain gates onto the native primitives of the target network.
#[derive(Debug, Default)]
pub struct NpnDatabase {
    params: NpnDatabaseParams,
    cache: HashMap<TruthTable, Chain>,
    /// Memoised canonisation results keyed by the *original* function.
    /// Cut functions repeat massively across candidates of one pass, and
    /// exhaustive NPN canonisation (all `2^{n+1} n!` transforms) is far
    /// more expensive than a hash lookup, so this cache dominates the
    /// rewrite loop's speed.  Bounded by the number of distinct cut
    /// functions (≤ 2^16 for 4-input cuts).
    canon_cache: HashMap<TruthTable, (TruthTable, NpnTransform)>,
}

impl NpnDatabase {
    /// Creates an empty database with default parameters (heuristic
    /// structures only).
    pub fn new() -> Self {
        Self::with_params(NpnDatabaseParams::default())
    }

    /// Creates an empty database with the given parameters.
    pub fn with_params(params: NpnDatabaseParams) -> Self {
        Self {
            params,
            cache: HashMap::new(),
            canon_cache: HashMap::new(),
        }
    }

    /// Creates a database that uses SAT-based exact synthesis to populate
    /// classes.
    pub fn with_exact_synthesis(exact: ExactSynthesisParams) -> Self {
        Self::with_params(NpnDatabaseParams {
            use_exact_synthesis: true,
            exact,
        })
    }

    /// Number of NPN classes cached so far.
    pub fn num_classes(&self) -> usize {
        self.cache.len()
    }

    /// Returns the chain stored for the NPN representative of `function`,
    /// computing and caching it if necessary.
    pub fn chain_for(&mut self, canonical: &TruthTable) -> &Chain {
        chain_for_in(&mut self.cache, &self.params, canonical)
    }
}

/// [`NpnDatabase::chain_for`] as a free function over the chain cache, so
/// callers holding a borrow of another database field (the canonisation
/// cache) can still resolve chains.
fn chain_for_in<'c>(
    cache: &'c mut HashMap<TruthTable, Chain>,
    params: &NpnDatabaseParams,
    canonical: &TruthTable,
) -> &'c Chain {
    if !cache.contains_key(canonical) {
        let chain = compute_chain(params, canonical);
        debug_assert_eq!(chain.simulate(), *canonical);
        cache.insert(canonical.clone(), chain);
    }
    &cache[canonical]
}

fn compute_chain(params: &NpnDatabaseParams, canonical: &TruthTable) -> Chain {
    if params.use_exact_synthesis {
        if let Some(chain) = exact_chain_synthesis(canonical, &params.exact) {
            return chain;
        }
    }
    heuristic_chain(canonical)
}

fn heuristic_chain(canonical: &TruthTable) -> Chain {
    let mut scratch = Xag::new();
    let leaves: Vec<Signal> = (0..canonical.num_vars())
        .map(|_| scratch.create_pi())
        .collect();
    let root = sop_resynthesize(&mut scratch, canonical, &leaves);
    record_chain(&scratch, root)
}

impl<N: GateBuilder, R: Resynthesis<N>> Resynthesis<N> for &mut R {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        (**self).resynthesize(ntk, function, leaves)
    }
}

impl<N: GateBuilder> Resynthesis<N> for NpnDatabase {
    fn resynthesize(
        &mut self,
        ntk: &mut N,
        function: &TruthTable,
        leaves: &[Signal],
    ) -> Option<Signal> {
        if function.is_const() {
            return Some(ntk.get_constant(function.is_one()));
        }
        if !self.canon_cache.contains_key(function) {
            let computed = npn_canonize(function);
            self.canon_cache.insert(function.clone(), computed);
        }
        // hit path: probe by reference — no key clone, no table clone (the
        // chain cache is resolved through a free function so the borrow of
        // the canonisation cache can be held across it)
        let (canonical, transform) = &self.canon_cache[function];
        // chain input j is canonical variable y_j; original input i maps to
        // y_{perm[i]} with the recorded input negation
        let mut mapped = vec![Signal::constant(false); function.num_vars()];
        for (i, &leaf) in leaves.iter().enumerate() {
            mapped[transform.perm[i]] = leaf.complement_if(transform.input_negated(i));
        }
        let chain = chain_for_in(&mut self.cache, &self.params, canonical);
        let out = chain.replay(ntk, &mapped);
        Some(out.complement_if(transform.output_negation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_network::simulation::simulate;
    use glsx_network::{Aig, Mig, Network};

    fn check_resynthesis<N, R>(mut engine: R, tt: &TruthTable)
    where
        N: GateBuilder,
        R: Resynthesis<N>,
    {
        let mut ntk = N::new();
        let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| ntk.create_pi()).collect();
        let root = engine
            .resynthesize(&mut ntk, tt, &leaves)
            .expect("engines in this test always succeed");
        ntk.create_po(root);
        assert_eq!(&simulate(&ntk)[0], tt);
    }

    #[test]
    fn record_chain_roundtrip() {
        let mut xag = Xag::new();
        let a = xag.create_pi();
        let b = xag.create_pi();
        let c = xag.create_pi();
        let t = xag.create_and(a, !b);
        let root = xag.create_xor(t, c);
        let chain = record_chain(&xag, !root);
        let expected = !simulate(&{
            let mut tmp = xag.clone();
            tmp.create_po(root);
            tmp
        })[0]
            .clone();
        assert_eq!(chain.simulate(), expected);
    }

    #[test]
    fn npn_database_serves_multiple_representations() {
        let mut db = NpnDatabase::new();
        let functions = [
            TruthTable::from_hex(3, "e8").unwrap(),
            TruthTable::from_hex(3, "96").unwrap(),
            TruthTable::from_hex(4, "cafe").unwrap(),
            TruthTable::from_hex(4, "1ee1").unwrap(),
        ];
        for tt in &functions {
            // resynthesize into an AIG and an MIG from the same database
            let mut aig = Aig::new();
            let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| aig.create_pi()).collect();
            let root = Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, tt, &leaves).unwrap();
            aig.create_po(root);
            assert_eq!(&simulate(&aig)[0], tt);

            let mut mig = Mig::new();
            let leaves: Vec<Signal> = (0..tt.num_vars()).map(|_| mig.create_pi()).collect();
            let root = Resynthesis::<Mig>::resynthesize(&mut db, &mut mig, tt, &leaves).unwrap();
            mig.create_po(root);
            assert_eq!(&simulate(&mig)[0], tt);
        }
        // all NPN-equivalent functions share one cache entry
        let before = db.num_classes();
        let flipped = TruthTable::from_hex(3, "e8").unwrap().flip(0);
        check_resynthesis::<Aig, _>(&mut db as &mut NpnDatabase, &flipped);
        assert_eq!(db.num_classes(), before);
    }

    #[test]
    fn npn_database_with_exact_synthesis_uses_optimal_structures() {
        let mut db = NpnDatabase::with_exact_synthesis(ExactSynthesisParams {
            max_steps: 5,
            ..ExactSynthesisParams::default()
        });
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let chain = db.chain_for(&npn_canonize(&maj).0).clone();
        assert!(chain.num_steps() <= 4);
        assert_eq!(db.num_classes(), 1);
    }

    #[test]
    fn sop_and_shannon_engines_are_resynthesis_impls() {
        let tt = TruthTable::from_hex(4, "8241").unwrap();
        check_resynthesis::<Aig, _>(SopResynthesis, &tt);
        check_resynthesis::<Aig, _>(ShannonResynthesis, &tt);
        check_resynthesis::<Mig, _>(SopResynthesis, &tt);
        check_resynthesis::<Mig, _>(ShannonResynthesis, &tt);
    }

    #[test]
    fn constants_resynthesize_to_constants() {
        let mut db = NpnDatabase::new();
        let mut aig = Aig::new();
        let leaves: Vec<Signal> = (0..3).map(|_| aig.create_pi()).collect();
        let zero =
            Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, &TruthTable::zero(3), &leaves)
                .unwrap();
        assert_eq!(zero, aig.get_constant(false));
        let one = Resynthesis::<Aig>::resynthesize(&mut db, &mut aig, &TruthTable::one(3), &leaves)
            .unwrap();
        assert_eq!(one, aig.get_constant(true));
        assert_eq!(aig.num_gates(), 0);
    }
}
