//! Resilient flow execution: checkpointed, panic-isolated, verified steps.
//!
//! [`run_script_guarded`] executes a [`FlowScript`](crate::FlowScript)
//! under a *never-corrupt* contract: whatever a pass does — exhaust its
//! effort budget, produce a functionally wrong network, or panic halfway
//! through a substitution — the network handed back is always a valid,
//! input-equivalent state.  The machinery:
//!
//! * **Checkpoints.**  Before every step the executor captures the network
//!   — a full [`NetworkSnapshot`](glsx_network::NetworkSnapshot)
//!   ([`RollbackStrategy::Snapshot`]) or a cheap first-touch
//!   [`UndoJournal`](glsx_network::Network::begin_undo) recording only the
//!   step's own mutations ([`RollbackStrategy::Journal`]).
//! * **Panic isolation.**  The step runs under
//!   [`std::panic::catch_unwind`]; a panic rolls the network back to the
//!   checkpoint (which also bumps the traversal epoch, so scratch stamps a
//!   dying pass left mid-traversal can never alias a later traversal) and
//!   the flow continues with the next step.
//! * **Verification.**  After a committed step the network is checked
//!   against the *flow input* (one clone taken up front) — by random
//!   simulation or a full SAT miter ([`VerifyMode`]).  A refuted or
//!   unprovable step is rolled back like a panic.  Budget-starved miters
//!   are distinguishable from genuine failures via
//!   [`EquivalenceOutcome::limit_exhausted`](glsx_core::sweeping::EquivalenceOutcome).
//! * **Budgets and deadlines.**  Per-step effort budgets come from the
//!   script (`rw -budget 2M`) or [`GuardOptions::step_budget`]; a
//!   flow-level wall-clock deadline is threaded into every budget and
//!   steps that would start past it are skipped outright.
//! * **Fault injection.**  A [`FaultPlan`] (`GLSX_FAULT_PLAN=`
//!   `panic@rewrite:3,exhaust@fraig:1,unknown@verify:2`) deterministically
//!   injects pass panics, budget exhaustions and verification unknowns at
//!   exact sites, which is how the recovery paths are tested — no mocks,
//!   the real rollback machinery runs.
//!
//! In debug builds every rollback is followed by a full structural audit
//! ([`check_network_integrity`], which includes the structural-hash and
//! choice-ring checks), so a checkpoint that failed to restore invariants
//! fails loudly instead of corrupting later steps.

use crate::{
    apply_step_override, clear_step_overrides, run_step_traced, FlowOptions, FlowScript, FlowStep,
};
use glsx_core::resubstitution::ResubNetwork;
use glsx_core::sweeping::{check_equivalence_with_limits, EquivalenceResult, SweepEngine};
use glsx_network::simulation::equivalent_by_random_simulation;
use glsx_network::telemetry::{self, build_span_tree, MetricsRegistry, SpanNode, Tracer};
use glsx_network::views::check_network_integrity;
use glsx_network::{cleanup_dangling, Budget, GateBuilder, InjectedFault, Network, StepOutcome};
use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::{Duration, Instant};

/// How a guarded step's checkpoint is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RollbackStrategy {
    /// Full [`NetworkSnapshot`](glsx_network::NetworkSnapshot) per step:
    /// O(network) to capture, restore cost independent of how much the
    /// step mutated.  The robust default.
    #[default]
    Snapshot,
    /// First-touch undo journal
    /// ([`begin_undo`](glsx_network::Network::begin_undo)): capture is
    /// O(outputs), rollback cost proportional to the step's own mutation
    /// footprint — much cheaper when steps usually succeed.
    Journal,
}

/// How a committed step is checked against the flow input.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// No verification at all — per-step checks and the final contract
    /// check are both skipped ([`FlowReport::final_verify`] stays `None`).
    /// Rollback on panic still works; use this to measure the bare cost
    /// of the checkpoint/unwind machinery.
    None,
    /// Random word-parallel simulation — fast, refutation-only.
    Simulation,
    /// Full SAT miter per step — a proof, at solver cost.
    #[default]
    Miter,
}

/// A deterministic fault to inject at a specific site occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the pass at its first budget poll.
    Panic,
    /// Force the step's budget to exhaust at its first poll.
    Exhaust,
    /// Starve the verification miter (propagation limit 1) so it returns
    /// `Unknown` with `limit_exhausted` set.  Only meaningful at the
    /// `verify` site.
    Unknown,
}

impl FaultAction {
    fn name(&self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Exhaust => "exhaust",
            FaultAction::Unknown => "unknown",
        }
    }
}

/// One planned fault: `action@site:occurrence` (1-based occurrence of the
/// site within the flow).
#[derive(Clone, Debug, PartialEq, Eq)]
struct PlannedFault {
    action: FaultAction,
    site: String,
    occurrence: usize,
}

/// Error returned when a fault plan cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFaultPlanError {
    message: String,
}

impl fmt::Display for ParseFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl Error for ParseFaultPlanError {}

/// A deterministic fault-injection plan.
///
/// Parsed from `action@site:occurrence` entries separated by commas, e.g.
/// `panic@rewrite:3,exhaust@fraig:1,unknown@verify:2` — panic inside the
/// third rewriting step, exhaust the first fraig step's budget
/// immediately, and starve the second per-step verification into
/// `Unknown`.  Sites are the step names (`balance`, `rewrite`,
/// `refactor`, `resub`, `fraig`, `lut_map`) plus `verify`; occurrences
/// are 1-based.  The plan is consulted by [`run_script_guarded`]; the
/// `GLSX_FAULT_PLAN` environment variable feeds [`FaultPlan::from_env`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Parses a plan from the `action@site:occurrence[,...]` notation.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown actions, malformed entries or a zero
    /// occurrence (occurrences are 1-based).
    pub fn parse(text: &str) -> Result<Self, ParseFaultPlanError> {
        let mut faults = Vec::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (action_text, rest) = entry.split_once('@').ok_or_else(|| ParseFaultPlanError {
                message: format!("`{entry}` is missing `@` (want action@site:occurrence)"),
            })?;
            let (site, occurrence_text) =
                rest.split_once(':').ok_or_else(|| ParseFaultPlanError {
                    message: format!("`{entry}` is missing `:` (want action@site:occurrence)"),
                })?;
            let action = match action_text {
                "panic" => FaultAction::Panic,
                "exhaust" => FaultAction::Exhaust,
                "unknown" => FaultAction::Unknown,
                other => {
                    return Err(ParseFaultPlanError {
                        message: format!("unknown action `{other}` in `{entry}`"),
                    })
                }
            };
            let occurrence: usize = occurrence_text.parse().map_err(|_| ParseFaultPlanError {
                message: format!("invalid occurrence `{occurrence_text}` in `{entry}`"),
            })?;
            if occurrence == 0 {
                return Err(ParseFaultPlanError {
                    message: format!("occurrences are 1-based (`{entry}`)"),
                });
            }
            if action == FaultAction::Unknown && site != "verify" {
                return Err(ParseFaultPlanError {
                    message: format!(
                        "`unknown` faults only apply to the `verify` site (`{entry}`)"
                    ),
                });
            }
            faults.push(PlannedFault {
                action,
                site: site.to_string(),
                occurrence,
            });
        }
        Ok(Self { faults })
    }

    /// Reads the plan from the `GLSX_FAULT_PLAN` environment variable; an
    /// unset variable yields the empty plan, a malformed one panics (a
    /// silently dropped fault plan would make a failing resilience test
    /// pass vacuously).
    pub fn from_env() -> Self {
        match std::env::var("GLSX_FAULT_PLAN") {
            Ok(text) => Self::parse(&text).unwrap_or_else(|e| panic!("GLSX_FAULT_PLAN: {e}")),
            Err(_) => Self::default(),
        }
    }

    /// The fault planned for the `occurrence`-th visit of `site`, if any.
    fn fault_at(&self, site: &str, occurrence: usize) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|f| f.site == site && f.occurrence == occurrence)
            .map(|f| f.action)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .faults
            .iter()
            .map(|fault| {
                format!(
                    "{}@{}:{}",
                    fault.action.name(),
                    fault.site,
                    fault.occurrence
                )
            })
            .collect();
        write!(f, "{}", rendered.join(","))
    }
}

/// Options of the guarded executor.
#[derive(Clone, Debug, Default)]
pub struct GuardOptions {
    /// How per-step checkpoints are taken.
    pub rollback: RollbackStrategy,
    /// How committed steps are verified against the flow input.
    pub verify: VerifyMode,
    /// Default per-step effort budget in ticks for steps the script does
    /// not budget itself (`None` = unlimited).
    pub step_budget: Option<u64>,
    /// Flow-level wall-clock deadline: threaded into every step budget,
    /// and steps that would *start* past it are skipped outright.
    pub deadline: Option<Duration>,
    /// Deterministic faults to inject (see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
}

/// Why a guarded step was rolled back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The pass panicked; the unwind was caught at the step boundary.
    Panic,
    /// Verification refuted the step (a counterexample exists).
    VerifyInequivalent,
    /// Verification could not prove the step (budget-starved miter); the
    /// step is rolled back conservatively.
    VerifyUnknown,
}

/// What happened to one guarded step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// The step ran, passed verification and its mutations stand.
    Committed,
    /// The step failed ([`FailureKind`]) and the checkpoint was restored.
    RolledBack,
    /// The step never ran: the flow deadline had already passed.
    Skipped,
}

/// Which checkpoint strategy actually ran before a guarded step.
///
/// Read-only steps (e.g. a [`FlowStep::LutMap`] mapping query inside an
/// in-place script, which mutates nothing) skip checkpointing entirely —
/// there is no mutation to protect against, so paying a full snapshot
/// clone (or opening an undo journal) for them would be pure overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointStrategy {
    /// A full network snapshot was taken ([`RollbackStrategy::Snapshot`]).
    Snapshot,
    /// An undo journal was opened ([`RollbackStrategy::Journal`]).
    Journal,
    /// No checkpoint was taken: the step is read-only, so there is
    /// nothing a rollback could need to restore (per-step verification
    /// is skipped for the same reason).
    None,
}

/// Per-step record of a guarded flow.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The step in script notation (e.g. `rs -c 6`).
    pub step: String,
    /// Fault-plan site name of the step (`rewrite`, `fraig`, …).
    pub site: &'static str,
    /// Outcome of the guarded execution.
    pub status: StepStatus,
    /// Failure that caused a rollback, if any.
    pub failure: Option<FailureKind>,
    /// Committed substitutions (0 for rolled-back or skipped steps).
    pub substitutions: usize,
    /// Whether the step's budget ran dry ([`StepOutcome::Exhausted`]).
    pub outcome: StepOutcome,
    /// Budget ticks the step charged.
    pub ticks: u64,
    /// Whether the step's verification miter hit a resource limit.
    pub verify_limit_exhausted: bool,
    /// Which checkpoint strategy ran before the step
    /// ([`CheckpointStrategy::None`] for read-only and deadline-skipped
    /// steps).
    pub checkpoint: CheckpointStrategy,
    /// Wall-clock duration of the guarded step (checkpoint, pass, verify
    /// and any rollback), on the same monotonic clock as the spans.
    pub duration_seconds: f64,
    /// The step's span tree (the `step:<site>` root with the pass's own
    /// spans nested inside), from the tracer the flow ran under; empty
    /// when span recording is off.
    pub spans: Vec<SpanNode>,
    /// Counters the step incremented (sorted, zero deltas dropped); empty
    /// when counter recording is off.
    pub metric_deltas: Vec<(String, u64)>,
}

/// Report of a guarded flow run ([`run_script_guarded`]).
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// One record per script step, in order.
    pub steps: Vec<StepReport>,
    /// Steps whose mutations stand.
    pub committed: usize,
    /// Steps rolled back to their checkpoint (any [`FailureKind`]).
    pub rollbacks: usize,
    /// Rollbacks caused by a caught pass panic.
    pub panics: usize,
    /// Rollbacks caused by verification (refuted or unprovable).
    pub verify_failures: usize,
    /// Committed steps that stopped on an exhausted budget.
    pub exhausted_steps: usize,
    /// Steps skipped because the flow deadline had passed.
    pub deadline_skips: usize,
    /// Total committed substitutions.
    pub substitutions: usize,
    /// Total budget ticks charged over all steps.
    pub ticks_spent: u64,
    /// Gate count before / after the flow.
    pub initial_size: usize,
    /// Gate count after the flow (post-compaction).
    pub final_size: usize,
    /// Verdict of the final miter against the flow input: `Some(true)` is
    /// a proof, `Some(false)` a refutation (never expected — the contract
    /// violation the guarded executor exists to prevent), `None` means
    /// the final check was skipped or unresolved.
    pub final_verify: Option<bool>,
    /// Wall-clock runtime of the guarded flow in seconds.
    pub runtime_seconds: f64,
}

/// Whether a step cannot mutate the network inside an in-place guarded
/// script, so checkpointing and per-step verification are skipped for it.
/// [`FlowStep::LutMap`] is a pure mapping query here: the in-place
/// runners do not consume it (only [`run_script_and_map`] does, as the
/// terminal representation change).
fn step_is_read_only(step: &FlowStep) -> bool {
    matches!(step, FlowStep::LutMap { .. })
}

/// Fault-plan site name of a step.
fn step_site(step: &FlowStep) -> &'static str {
    match step {
        FlowStep::Balance => "balance",
        FlowStep::Rewrite { .. } => "rewrite",
        FlowStep::Refactor { .. } => "refactor",
        FlowStep::Resubstitute { .. } => "resub",
        FlowStep::Fraig { .. } => "fraig",
        FlowStep::LutMap { .. } => "lut_map",
    }
}

thread_local! {
    /// Set while a guarded step runs, so the process panic hook stays
    /// silent for panics the executor is about to catch and handle.
    static EXPECTED_PANIC: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses the default
/// backtrace spew for panics raised inside a guarded step — they are
/// caught, recorded in the [`FlowReport`] and recovered from, so the
/// stderr noise would only obscure genuine failures.  Panics on other
/// threads or outside guarded steps still reach the previous hook.
fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if EXPECTED_PANIC.with(|flag| flag.get()) {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `script` on `ntk` under the never-corrupt contract described in
/// the [module docs](self): every step is checkpointed, panic-isolated,
/// budgeted and verified, failures roll back and the flow continues.  The
/// network is compacted at the end (like
/// [`run_script`](crate::run_script)) and a final check against the flow
/// input — as strong as the configured [`VerifyMode`] — is recorded in
/// [`FlowReport::final_verify`].
///
/// The [`SweepEngine`] recycled across `fraig` steps is reset after every
/// rollback: its accumulated pattern words may reference node ids that
/// only existed in the rolled-back burst.
pub fn run_script_guarded<N>(
    ntk: &mut N,
    script: &FlowScript,
    options: &FlowOptions,
    guard: &GuardOptions,
) -> FlowReport
where
    N: Network + GateBuilder + ResubNetwork + Clone,
{
    run_script_guarded_traced(ntk, script, options, guard, telemetry::global())
}

/// [`run_script_guarded`] reporting through an explicit telemetry
/// [`Tracer`]: every step runs under a `step:<site>` span (the pass's own
/// spans nest inside), per-step verification under a `verify` span and
/// the final contract check under `final_verify`; each [`StepReport`]
/// carries the step's span tree and counter deltas, and each step's
/// budget charge is absorbed as `<site>.ticks_spent`.  Scripts with
/// `-trace` marks narrow span recording to exactly the marked steps.
pub fn run_script_guarded_traced<N>(
    ntk: &mut N,
    script: &FlowScript,
    options: &FlowOptions,
    guard: &GuardOptions,
    tracer: &Tracer,
) -> FlowReport
where
    N: Network + GateBuilder + ResubNetwork + Clone,
{
    install_quiet_panic_hook();
    let start = Instant::now();
    // a bulk-loaded network materialises its deferred fanout lists and
    // strash table here, before the passes (and the checkpoints) see it
    ntk.ensure_derived_state();
    // the single reference clone every per-step verification (and the
    // final miter) checks against
    let input = ntk.clone();
    let mut report = FlowReport {
        initial_size: ntk.num_gates(),
        ..FlowReport::default()
    };
    let mut engine = SweepEngine::new();
    // 1-based occurrence counters per fault-plan site
    let mut site_counts: Vec<(&'static str, usize)> = Vec::new();
    let mut verify_count = 0usize;
    for (index, step) in script.steps().iter().enumerate() {
        let site = step_site(step);
        let occurrence = {
            match site_counts.iter_mut().find(|(s, _)| *s == site) {
                Some((_, count)) => {
                    *count += 1;
                    *count
                }
                None => {
                    site_counts.push((site, 1));
                    1
                }
            }
        };
        let mut step_report = StepReport {
            step: step_text(script, index),
            site,
            status: StepStatus::Skipped,
            failure: None,
            substitutions: 0,
            outcome: StepOutcome::Completed,
            ticks: 0,
            verify_limit_exhausted: false,
            checkpoint: CheckpointStrategy::None,
            duration_seconds: 0.0,
            spans: Vec::new(),
            metric_deltas: Vec::new(),
        };
        // a step that would start past the deadline is not started at all
        if let Some(deadline) = guard.deadline {
            if start.elapsed() >= deadline {
                report.deadline_skips += 1;
                report.steps.push(step_report);
                continue;
            }
        }
        let mut budget = match script.budget_of(index).or(guard.step_budget) {
            Some(ticks) => Budget::with_ticks(ticks),
            None => Budget::unlimited(),
        };
        if let Some(deadline) = guard.deadline {
            budget = budget.and_deadline(deadline.saturating_sub(start.elapsed()));
        }
        match guard.fault_plan.fault_at(site, occurrence) {
            Some(FaultAction::Panic) => budget = budget.inject(InjectedFault::Panic, 1),
            Some(FaultAction::Exhaust) => budget = budget.inject(InjectedFault::Exhaust, 1),
            _ => {}
        }
        apply_step_override(tracer, script, index);
        let step_start = Instant::now();
        let span_mark = tracer.event_mark();
        let metrics_before = tracer.metrics_snapshot();
        let step_span = tracer.span(&format!("step:{site}"));
        // checkpoint, run under the unwind guard, then verify.  Read-only
        // steps skip both checkpoint and verification: there is no
        // mutation to protect, so a snapshot clone of a large network
        // would be pure overhead.
        let read_only = step_is_read_only(step);
        let (checkpoint, strategy) = if read_only {
            (None, CheckpointStrategy::None)
        } else {
            match guard.rollback {
                RollbackStrategy::Snapshot => (Some(ntk.snapshot()), CheckpointStrategy::Snapshot),
                RollbackStrategy::Journal => {
                    ntk.begin_undo();
                    (None, CheckpointStrategy::Journal)
                }
            }
        };
        step_report.checkpoint = strategy;
        let rollback = |ntk: &mut N, engine: &mut SweepEngine| {
            match (&checkpoint, strategy) {
                (Some(snapshot), _) => ntk.restore(snapshot),
                (None, CheckpointStrategy::Journal) => {
                    let rolled = ntk.rollback_undo();
                    debug_assert!(rolled, "journal checkpoint vanished mid-step");
                }
                // read-only step: nothing was (or could have been) mutated
                (None, _) => {}
            }
            // the engine's pattern words may reference rolled-back nodes
            engine.reset();
            if cfg!(debug_assertions) {
                check_network_integrity(ntk)
                    .unwrap_or_else(|e| panic!("rollback left a corrupt network: {e}"));
            }
        };
        let result = {
            EXPECTED_PANIC.with(|flag| flag.set(true));
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                run_step_traced(ntk, step, options, &mut engine, &budget, tracer)
            }));
            EXPECTED_PANIC.with(|flag| flag.set(false));
            result
        };
        step_report.ticks = budget.spent();
        step_report.outcome = budget.outcome();
        report.ticks_spent += step_report.ticks;
        tracer.absorb(site, &budget);
        match result {
            Err(_panic_payload) => {
                rollback(ntk, &mut engine);
                step_report.status = StepStatus::RolledBack;
                step_report.failure = Some(FailureKind::Panic);
                report.rollbacks += 1;
                report.panics += 1;
            }
            Ok(substitutions) => {
                let verify_span = tracer.span("verify");
                let verdict = match guard.verify {
                    // a read-only step changed nothing, so there is
                    // nothing to verify (or to roll back)
                    _ if read_only => None,
                    VerifyMode::None => None,
                    VerifyMode::Simulation => {
                        verify_count += 1;
                        Some(if equivalent_by_random_simulation(&input, ntk, 8, 0x5eed) {
                            EquivalenceResult::Equivalent
                        } else {
                            EquivalenceResult::Inequivalent(Vec::new())
                        })
                    }
                    VerifyMode::Miter => {
                        verify_count += 1;
                        let propagation_limit =
                            match guard.fault_plan.fault_at("verify", verify_count) {
                                Some(FaultAction::Unknown) => Some(1),
                                _ => None,
                            };
                        let outcome =
                            check_equivalence_with_limits(&input, ntk, None, propagation_limit);
                        step_report.verify_limit_exhausted = outcome.limit_exhausted;
                        Some(outcome.result)
                    }
                };
                drop(verify_span);
                match verdict {
                    None | Some(EquivalenceResult::Equivalent) => {
                        if strategy == CheckpointStrategy::Journal {
                            ntk.commit_undo();
                        }
                        step_report.status = StepStatus::Committed;
                        step_report.substitutions = substitutions;
                        report.committed += 1;
                        report.substitutions += substitutions;
                        if matches!(step_report.outcome, StepOutcome::Exhausted { .. }) {
                            report.exhausted_steps += 1;
                        }
                    }
                    Some(refuted_or_unknown) => {
                        rollback(ntk, &mut engine);
                        step_report.status = StepStatus::RolledBack;
                        step_report.failure =
                            Some(if refuted_or_unknown == EquivalenceResult::Unknown {
                                FailureKind::VerifyUnknown
                            } else {
                                FailureKind::VerifyInequivalent
                            });
                        report.rollbacks += 1;
                        report.verify_failures += 1;
                    }
                }
            }
        }
        drop(step_span);
        step_report.duration_seconds = step_start.elapsed().as_secs_f64();
        step_report.spans = build_span_tree(&tracer.events_since(span_mark));
        step_report.metric_deltas =
            MetricsRegistry::counter_deltas(&metrics_before, &tracer.metrics_snapshot());
        report.steps.push(step_report);
    }
    clear_step_overrides(tracer, script);
    *ntk = cleanup_dangling(ntk);
    report.final_size = ntk.num_gates();
    // the final check is never fault-injected: it is the contract check;
    // its strength follows the configured verification mode
    report.final_verify = {
        let _final = tracer.span("final_verify");
        match guard.verify {
            VerifyMode::None => None,
            VerifyMode::Simulation => Some(equivalent_by_random_simulation(&input, ntk, 8, 0x5eed)),
            VerifyMode::Miter => {
                match check_equivalence_with_limits(&input, ntk, None, None).result {
                    EquivalenceResult::Equivalent => Some(true),
                    EquivalenceResult::Inequivalent(_) => Some(false),
                    EquivalenceResult::Unknown => None,
                }
            }
        }
    };
    report.runtime_seconds = start.elapsed().as_secs_f64();
    report
}

/// The step in script notation, including its `-budget` flag.
fn step_text(script: &FlowScript, index: usize) -> String {
    let single = FlowScript::from_steps(vec![script.steps()[index]]);
    let mut text = single.to_string();
    if let Some(ticks) = script.budget_of(index) {
        let mut budgeted = single;
        budgeted.set_budget(0, Some(ticks));
        text = budgeted.to_string();
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::adder;
    use glsx_core::sweeping::check_equivalence;
    use glsx_network::simulation::equivalent_by_simulation;
    use glsx_network::Aig;

    fn guarded_script() -> FlowScript {
        FlowScript::parse("bz; rw; rs -c 6; fraig; rwz; rf").unwrap()
    }

    #[test]
    fn fault_plans_parse_and_roundtrip() {
        let plan = FaultPlan::parse("panic@rewrite:3, exhaust@fraig:1,unknown@verify:2").unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.fault_at("rewrite", 3), Some(FaultAction::Panic));
        assert_eq!(plan.fault_at("rewrite", 2), None);
        assert_eq!(plan.fault_at("fraig", 1), Some(FaultAction::Exhaust));
        assert_eq!(plan.fault_at("verify", 2), Some(FaultAction::Unknown));
        assert_eq!(
            plan.to_string(),
            "panic@rewrite:3,exhaust@fraig:1,unknown@verify:2"
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("panic@rewrite").is_err());
        assert!(FaultPlan::parse("panic:3").is_err());
        assert!(FaultPlan::parse("explode@rewrite:1").is_err());
        assert!(FaultPlan::parse("panic@rewrite:0").is_err());
        assert!(FaultPlan::parse("unknown@rewrite:1").is_err());
    }

    #[test]
    fn guarded_flow_without_faults_matches_the_plain_flow() {
        let source: Aig = adder(4);
        let mut plain = source.clone();
        let plain_stats = crate::run_script(&mut plain, &guarded_script(), &FlowOptions::default());
        for rollback in [RollbackStrategy::Snapshot, RollbackStrategy::Journal] {
            let mut guarded = source.clone();
            let report = run_script_guarded(
                &mut guarded,
                &guarded_script(),
                &FlowOptions::default(),
                &GuardOptions {
                    rollback,
                    ..GuardOptions::default()
                },
            );
            assert_eq!(report.rollbacks, 0, "{report:?}");
            assert_eq!(report.committed, guarded_script().steps().len());
            assert_eq!(report.substitutions, plain_stats.substitutions);
            assert_eq!(guarded.num_gates(), plain.num_gates());
            assert_eq!(guarded.po_signals(), plain.po_signals());
            assert_eq!(report.final_verify, Some(true));
        }
    }

    #[test]
    fn read_only_steps_skip_checkpoint_and_verification() {
        let source: Aig = adder(4);
        for rollback in [RollbackStrategy::Snapshot, RollbackStrategy::Journal] {
            let mut ntk = source.clone();
            let report = run_script_guarded(
                &mut ntk,
                &FlowScript::parse("rw; lut_map -k 4; rwz").unwrap(),
                &FlowOptions::default(),
                &GuardOptions {
                    rollback,
                    verify: VerifyMode::Miter,
                    ..GuardOptions::default()
                },
            );
            assert_eq!(report.rollbacks, 0, "{report:?}");
            assert_eq!(report.committed, 3);
            // mutating steps checkpoint with the configured strategy,
            // the read-only mapping query with none at all
            let expected = match rollback {
                RollbackStrategy::Snapshot => CheckpointStrategy::Snapshot,
                RollbackStrategy::Journal => CheckpointStrategy::Journal,
            };
            assert_eq!(report.steps[0].checkpoint, expected);
            assert_eq!(report.steps[1].checkpoint, CheckpointStrategy::None);
            assert_eq!(report.steps[2].checkpoint, expected);
            // the read-only step also skips its per-step verification:
            // no `verify` span and no miter limit flag
            assert_eq!(report.steps[1].substitutions, 0);
            assert!(!report.steps[1].verify_limit_exhausted);
            assert_eq!(report.final_verify, Some(true));
            assert!(equivalent_by_simulation(&source, &ntk));
        }
        // a deadline-skipped step reports no checkpoint either
        let mut ntk = source.clone();
        let report = run_script_guarded(
            &mut ntk,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions {
                deadline: Some(Duration::ZERO),
                ..GuardOptions::default()
            },
        );
        assert!(report
            .steps
            .iter()
            .all(|s| s.checkpoint == CheckpointStrategy::None));
    }

    #[test]
    fn parallel_rewrite_steps_run_guarded_like_serial_ones() {
        let source: Aig = adder(6);
        let mut serial = source.clone();
        let serial_report = run_script_guarded(
            &mut serial,
            &FlowScript::parse("bz; rw; rwz").unwrap(),
            &FlowOptions::default(),
            &GuardOptions::default(),
        );
        for threads in [1, 4] {
            let mut parallel = source.clone();
            let options = FlowOptions {
                parallelism: glsx_network::Parallelism::new(threads),
                ..FlowOptions::default()
            };
            let report = run_script_guarded(
                &mut parallel,
                &FlowScript::parse("bz; rw -par; rwz -par").unwrap(),
                &options,
                &GuardOptions {
                    verify: VerifyMode::Miter,
                    ..GuardOptions::default()
                },
            );
            assert_eq!(report.rollbacks, 0, "{report:?}");
            // bit-identical to the serial flow at any thread count
            assert_eq!(report.substitutions, serial_report.substitutions);
            assert_eq!(parallel.num_gates(), serial.num_gates());
            assert_eq!(parallel.po_signals(), serial.po_signals());
            assert_eq!(report.final_verify, Some(true));
        }
    }

    #[test]
    fn injected_panics_roll_back_and_the_flow_recovers() {
        let source: Aig = adder(4);
        let plan = FaultPlan::parse("panic@rewrite:1,panic@resub:1").unwrap();
        for rollback in [RollbackStrategy::Snapshot, RollbackStrategy::Journal] {
            let mut ntk = source.clone();
            let report = run_script_guarded(
                &mut ntk,
                &guarded_script(),
                &FlowOptions::default(),
                &GuardOptions {
                    rollback,
                    fault_plan: plan.clone(),
                    ..GuardOptions::default()
                },
            );
            assert_eq!(report.panics, 2, "{report:?}");
            assert_eq!(report.rollbacks, 2);
            assert_eq!(
                report.committed,
                guarded_script().steps().len() - 2,
                "the remaining steps keep running"
            );
            assert_eq!(report.final_verify, Some(true));
            assert!(equivalent_by_simulation(&source, &ntk));
            let panicked: Vec<&str> = report
                .steps
                .iter()
                .filter(|s| s.failure == Some(FailureKind::Panic))
                .map(|s| s.site)
                .collect();
            assert_eq!(panicked, ["rewrite", "resub"]);
        }
    }

    #[test]
    fn injected_exhaustion_commits_a_clean_prefix() {
        let mut ntk: Aig = adder(4);
        let source = ntk.clone();
        let report = run_script_guarded(
            &mut ntk,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions {
                fault_plan: FaultPlan::parse("exhaust@rewrite:1").unwrap(),
                ..GuardOptions::default()
            },
        );
        assert_eq!(report.rollbacks, 0, "exhaustion is not a failure");
        assert_eq!(report.exhausted_steps, 1, "{report:?}");
        let rewrite_step = report
            .steps
            .iter()
            .find(|s| s.site == "rewrite")
            .expect("script has a rewrite step");
        assert!(matches!(
            rewrite_step.outcome,
            StepOutcome::Exhausted { .. }
        ));
        assert_eq!(rewrite_step.status, StepStatus::Committed);
        assert_eq!(report.final_verify, Some(true));
        assert!(check_equivalence(&source, &ntk).is_equivalent());
    }

    #[test]
    fn starved_verification_rolls_back_conservatively() {
        let mut ntk: Aig = adder(4);
        let source = ntk.clone();
        let report = run_script_guarded(
            &mut ntk,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions {
                fault_plan: FaultPlan::parse("unknown@verify:2").unwrap(),
                ..GuardOptions::default()
            },
        );
        assert_eq!(report.verify_failures, 1, "{report:?}");
        assert_eq!(report.rollbacks, 1);
        let failed = &report.steps[1];
        assert_eq!(failed.status, StepStatus::RolledBack);
        assert_eq!(failed.failure, Some(FailureKind::VerifyUnknown));
        assert!(
            failed.verify_limit_exhausted,
            "a starved miter must be distinguishable from a genuine failure: {failed:?}"
        );
        assert_eq!(report.final_verify, Some(true));
        assert!(check_equivalence(&source, &ntk).is_equivalent());
    }

    #[test]
    fn deadline_skips_steps_instead_of_corrupting_them() {
        let mut ntk: Aig = adder(5);
        let source = ntk.clone();
        let report = run_script_guarded(
            &mut ntk,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions {
                deadline: Some(Duration::ZERO),
                ..GuardOptions::default()
            },
        );
        assert_eq!(report.deadline_skips, guarded_script().steps().len());
        assert_eq!(report.committed, 0);
        assert!(report.steps.iter().all(|s| s.status == StepStatus::Skipped));
        assert_eq!(report.final_verify, Some(true));
        assert!(equivalent_by_simulation(&source, &ntk));
    }

    #[test]
    fn traced_guarded_steps_carry_spans_durations_and_deltas() {
        use glsx_network::telemetry::{TraceMode, Tracer};
        let source: Aig = adder(4);
        let mut plain = source.clone();
        let plain_report = run_script_guarded(
            &mut plain,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions::default(),
        );
        let tracer = Tracer::new(TraceMode::Full);
        let mut traced = source.clone();
        let report = run_script_guarded_traced(
            &mut traced,
            &guarded_script(),
            &FlowOptions::default(),
            &GuardOptions::default(),
            &tracer,
        );
        // tracing is observational: the flow is bit-identical
        assert_eq!(report.substitutions, plain_report.substitutions);
        assert_eq!(traced.num_gates(), plain.num_gates());
        assert_eq!(traced.po_signals(), plain.po_signals());
        for step in &report.steps {
            assert!(step.duration_seconds > 0.0, "{step:?}");
            assert_eq!(step.spans.len(), 1, "one step:<site> root: {step:?}");
            let root = &step.spans[0];
            assert_eq!(root.name, format!("step:{}", step.site));
            assert!(
                root.children.iter().any(|c| c.name == step.site),
                "the pass span nests inside the step span: {root:?}"
            );
            assert!(
                root.children.iter().any(|c| c.name == "verify"),
                "per-step verification is visible: {root:?}"
            );
        }
        assert!(
            report.steps.iter().any(|s| !s.metric_deltas.is_empty()),
            "pass work shows up as counter deltas"
        );
        let rewrite_step = report
            .steps
            .iter()
            .find(|s| s.site == "rewrite")
            .expect("script has a rewrite step");
        assert!(
            rewrite_step
                .metric_deltas
                .iter()
                .any(|(name, _)| name == "rewrite.ticks_spent"),
            "the step budget is absorbed under the site prefix: {rewrite_step:?}"
        );
    }

    #[test]
    fn selective_trace_marks_narrow_span_recording() {
        use glsx_network::telemetry::{TraceMode, Tracer};
        let mut ntk: Aig = adder(4);
        let script = FlowScript::parse("bz; rw -trace; rs -c 6").unwrap();
        let tracer = Tracer::new(TraceMode::Full);
        let report = run_script_guarded_traced(
            &mut ntk,
            &script,
            &FlowOptions::default(),
            &GuardOptions::default(),
            &tracer,
        );
        assert!(report.steps[0].spans.is_empty(), "{:?}", report.steps[0]);
        assert!(!report.steps[1].spans.is_empty(), "{:?}", report.steps[1]);
        assert!(report.steps[2].spans.is_empty(), "{:?}", report.steps[2]);
        // counters are not narrowed by -trace: unmarked steps still report
        assert!(
            !report.steps[2].metric_deltas.is_empty(),
            "{:?}",
            report.steps[2]
        );
    }

    #[test]
    fn script_budgets_reach_the_guarded_steps() {
        let mut ntk: Aig = adder(4);
        let script = FlowScript::parse("rw -budget 1; rs -c 6").unwrap();
        let report = run_script_guarded(
            &mut ntk,
            &script,
            &FlowOptions::default(),
            &GuardOptions::default(),
        );
        assert!(matches!(
            report.steps[0].outcome,
            StepOutcome::Exhausted { .. }
        ));
        assert_eq!(report.steps[0].step, "rw -budget 1");
        assert_eq!(report.steps[1].outcome, StepOutcome::Completed);
        assert_eq!(report.final_verify, Some(true));
    }
}
