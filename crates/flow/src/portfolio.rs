//! The portfolio approach suggested in the paper's conclusion: run the
//! same generic flow with every representation and keep the best result
//! after LUT mapping.

use crate::{compress2rs, FlowOptions};
use glsx_core::lut_mapping::{lut_map_stats, LutMapParams};
use glsx_network::{convert_network, Aig, Mig, Xag};

/// Result of a portfolio run for one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioResult {
    /// Name of the winning representation (`"AIG"`, `"MIG"` or `"XAG"`).
    pub winner: &'static str,
    /// Number of k-LUTs of the winning result.
    pub best_luts: usize,
    /// LUT counts per representation, in the order AIG, MIG, XAG.
    pub luts_per_representation: [usize; 3],
}

/// Optimises `aig` with the generic flow instantiated for AIGs, MIGs and
/// XAGs, maps every result into `lut_size`-input LUTs and returns the best.
pub fn portfolio_best_luts(aig: &Aig, options: &FlowOptions, lut_size: usize) -> PortfolioResult {
    let map_params = LutMapParams::with_lut_size(lut_size);

    let mut as_aig = aig.clone();
    compress2rs(&mut as_aig, options);
    let aig_luts = lut_map_stats(&as_aig, &map_params).num_luts;

    let mut as_mig: Mig = convert_network(aig);
    compress2rs(&mut as_mig, options);
    let mig_luts = lut_map_stats(&as_mig, &map_params).num_luts;

    let mut as_xag: Xag = convert_network(aig);
    compress2rs(&mut as_xag, options);
    let xag_luts = lut_map_stats(&as_xag, &map_params).num_luts;

    let results = [("AIG", aig_luts), ("MIG", mig_luts), ("XAG", xag_luts)];
    let (winner, best_luts) = results
        .iter()
        .copied()
        .min_by_key(|&(_, luts)| luts)
        .expect("three candidates");
    PortfolioResult {
        winner,
        best_luts,
        luts_per_representation: [aig_luts, mig_luts, xag_luts],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::adder;

    #[test]
    fn portfolio_picks_the_minimum() {
        let aig: Aig = adder(4);
        let result = portfolio_best_luts(&aig, &FlowOptions::default(), 6);
        let expected_best = *result.luts_per_representation.iter().min().unwrap();
        assert_eq!(result.best_luts, expected_best);
        assert!(["AIG", "MIG", "XAG"].contains(&result.winner));
        assert!(result.best_luts > 0);
    }
}
