//! The portfolio approach suggested in the paper's conclusion: run the
//! same generic flow with every representation and keep the best result
//! after LUT mapping.

use crate::{compress2rs_script, run_script_traced, FlowOptions};
use glsx_core::lut_mapping::{lut_map_traced, LutMapParams};
use glsx_core::resubstitution::ResubNetwork;
use glsx_network::telemetry::{self, Tracer};
use glsx_network::{convert_network, Aig, Budget, GateBuilder, Mig, Network, Xag};

/// Result of a portfolio run for one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioResult {
    /// Name of the winning representation (`"AIG"`, `"MIG"` or `"XAG"`).
    pub winner: &'static str,
    /// Number of k-LUTs of the winning result.
    pub best_luts: usize,
    /// LUT counts per representation, in the order AIG, MIG, XAG.
    pub luts_per_representation: [usize; 3],
}

/// One representation's portfolio job: optimise in place, map, count LUTs.
fn flow_and_map<N>(
    ntk: &mut N,
    options: &FlowOptions,
    map_params: &LutMapParams,
    tracer: &Tracer,
) -> usize
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_script_traced(ntk, &compress2rs_script(), options, tracer);
    lut_map_traced(ntk, map_params, &Budget::unlimited(), tracer)
        .1
        .num_luts
}

/// Optimises `aig` with the generic flow instantiated for AIGs, MIGs and
/// XAGs, maps every result into `lut_size`-input LUTs and returns the best.
///
/// The three per-representation jobs are fully independent, so under
/// [`FlowOptions::parallelism`] they run on one scoped thread each and are
/// joined in the fixed AIG, MIG, XAG order — the result is bit-identical
/// to the serial run.
pub fn portfolio_best_luts(aig: &Aig, options: &FlowOptions, lut_size: usize) -> PortfolioResult {
    portfolio_best_luts_traced(aig, options, lut_size, telemetry::global())
}

/// [`portfolio_best_luts`] reporting through an explicit telemetry
/// [`Tracer`]: each representation's job runs under a `portfolio_aig` /
/// `portfolio_mig` / `portfolio_xag` span, and in the parallel
/// configuration each worker names its trace lane (`portfolio-aig`, …) —
/// an exported Chrome trace of a parallel run shows the three flows as
/// concurrent named rows.  Tracing is observational only: the result
/// stays bit-identical to the untraced (and serial) run.
pub fn portfolio_best_luts_traced(
    aig: &Aig,
    options: &FlowOptions,
    lut_size: usize,
    tracer: &Tracer,
) -> PortfolioResult {
    let map_params = LutMapParams::with_lut_size(lut_size);

    // conversion is cheap and deterministic; doing it up front leaves
    // three jobs with no shared state at all
    let mut as_aig = aig.clone();
    let mut as_mig: Mig = convert_network(aig);
    let mut as_xag: Xag = convert_network(aig);

    let [aig_luts, mig_luts, xag_luts] = if options.parallelism.is_parallel() {
        std::thread::scope(|scope| {
            let aig_job = scope.spawn(|| {
                tracer.name_lane("portfolio-aig");
                let _job = tracer.span("portfolio_aig");
                flow_and_map(&mut as_aig, options, &map_params, tracer)
            });
            let mig_job = scope.spawn(|| {
                tracer.name_lane("portfolio-mig");
                let _job = tracer.span("portfolio_mig");
                flow_and_map(&mut as_mig, options, &map_params, tracer)
            });
            let xag_job = scope.spawn(|| {
                tracer.name_lane("portfolio-xag");
                let _job = tracer.span("portfolio_xag");
                flow_and_map(&mut as_xag, options, &map_params, tracer)
            });
            [
                aig_job.join().expect("AIG portfolio worker panicked"),
                mig_job.join().expect("MIG portfolio worker panicked"),
                xag_job.join().expect("XAG portfolio worker panicked"),
            ]
        })
    } else {
        [
            {
                let _job = tracer.span("portfolio_aig");
                flow_and_map(&mut as_aig, options, &map_params, tracer)
            },
            {
                let _job = tracer.span("portfolio_mig");
                flow_and_map(&mut as_mig, options, &map_params, tracer)
            },
            {
                let _job = tracer.span("portfolio_xag");
                flow_and_map(&mut as_xag, options, &map_params, tracer)
            },
        ]
    };

    let results = [("AIG", aig_luts), ("MIG", mig_luts), ("XAG", xag_luts)];
    let (winner, best_luts) = results
        .iter()
        .copied()
        .min_by_key(|&(_, luts)| luts)
        .expect("three candidates");
    PortfolioResult {
        winner,
        best_luts,
        luts_per_representation: [aig_luts, mig_luts, xag_luts],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::adder;

    #[test]
    fn portfolio_picks_the_minimum() {
        let aig: Aig = adder(4);
        let result = portfolio_best_luts(&aig, &FlowOptions::default(), 6);
        let expected_best = *result.luts_per_representation.iter().min().unwrap();
        assert_eq!(result.best_luts, expected_best);
        assert!(["AIG", "MIG", "XAG"].contains(&result.winner));
        assert!(result.best_luts > 0);
    }

    #[test]
    fn traced_parallel_portfolio_is_pure_well_nested_and_concurrent() {
        use glsx_network::telemetry::{
            concurrent_lanes, parse_chrome_trace, spans_well_nested, TraceMode, Tracer,
        };
        let aig: Aig = adder(4);
        let options = FlowOptions {
            parallelism: glsx_network::Parallelism::new(4),
            ..FlowOptions::default()
        };
        let untraced = portfolio_best_luts_traced(&aig, &options, 6, &Tracer::off());
        let tracer = Tracer::new(TraceMode::Full);
        let traced = portfolio_best_luts_traced(&aig, &options, 6, &tracer);
        assert_eq!(traced, untraced, "tracing is observational only");
        assert!(
            spans_well_nested(&tracer.events()),
            "every lane's spans must nest"
        );
        let exported = tracer.chrome_trace_json();
        let spans = parse_chrome_trace(&exported).expect("the export parses back");
        assert!(
            concurrent_lanes(&spans) >= 2,
            "a 4-thread portfolio shows overlapping lanes"
        );
        for lane in ["portfolio-aig", "portfolio-mig", "portfolio-xag"] {
            assert!(exported.contains(lane), "missing lane name {lane}");
        }
    }

    #[test]
    fn parallel_portfolio_is_bit_identical_to_serial() {
        let aig: Aig = adder(4);
        let serial = portfolio_best_luts(
            &aig,
            &FlowOptions {
                parallelism: glsx_network::Parallelism::serial(),
                ..FlowOptions::default()
            },
            6,
        );
        for threads in [2, 4] {
            let parallel = portfolio_best_luts(
                &aig,
                &FlowOptions {
                    parallelism: glsx_network::Parallelism::new(threads),
                    ..FlowOptions::default()
                },
                6,
            );
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }
}
