//! The flow-script mini language (`bz; rs -c 6; rw; fraig; rfz; …`).

use std::error::Error;
use std::fmt;

/// A single optimisation step of a flow script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowStep {
    /// Tree balancing (`b`/`bz`).
    Balance,
    /// DAG-aware rewriting (`rw`, or `rwz` for zero-gain; `-par` selects
    /// the windowed parallel engine).
    Rewrite {
        /// Accept zero-gain replacements.
        zero_gain: bool,
        /// Run the windowed parallel engine
        /// ([`glsx_core::windowed::rewrite_windowed`]) with the flow
        /// options' thread count.  Bit-identical to the serial pass at
        /// every thread count, so the flag only changes how the work is
        /// scheduled.
        parallel: bool,
    },
    /// Refactoring (`rf`, or `rfz` for zero-gain).
    Refactor {
        /// Accept zero-gain replacements.
        zero_gain: bool,
    },
    /// Boolean resubstitution (`rs -c <cut> [-d <depth>]`).
    Resubstitute {
        /// Maximum cut size (`-c`).
        cut_size: usize,
        /// Maximum number of inserted gates (`-d`, default 1).
        depth: usize,
    },
    /// SAT sweeping / fraiging (`fraig [-c <conflicts>] [-choices]`):
    /// merge proven-equivalent nodes, optionally overriding the per-pair
    /// conflict budget of the flow options.
    Fraig {
        /// Per-pair conflict budget (`-c`); `None` uses the flow options'
        /// [`SweepParams::conflict_limit`](glsx_core::sweeping::SweepParams).
        conflict_limit: Option<u64>,
        /// Keep proven cones as structural choices (`-choices`) instead of
        /// deleting them (see
        /// [`SweepParams::record_choices`](glsx_core::sweeping::SweepParams)).
        record_choices: bool,
    },
    /// Terminal LUT mapping (`lut_map [-k <lut size>] [-choices]`).
    ///
    /// Mapping changes the representation (any graph network → k-LUTs), so
    /// this step is consumed by
    /// [`run_script_and_map`](crate::run_script_and_map) as the script's
    /// final step; the in-place [`run_script`](crate::run_script) skips it
    /// (documented there).
    LutMap {
        /// Number of LUT inputs (`-k`, default 6).
        lut_size: usize,
        /// Map over the enlarged, choice-aware cut sets (`-choices`; see
        /// [`LutMapParams::use_choices`](glsx_core::lut_mapping::LutMapParams)).
        use_choices: bool,
    },
}

/// Error returned when a flow script cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFlowScriptError {
    message: String,
}

impl fmt::Display for ParseFlowScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid flow script: {}", self.message)
    }
}

impl Error for ParseFlowScriptError {}

/// A parsed flow script: an ordered list of [`FlowStep`]s.
///
/// # Example
///
/// ```
/// use glsx_flow::{FlowScript, FlowStep};
///
/// let script = FlowScript::parse("bz; rs -c 6; rwz")?;
/// assert_eq!(script.steps().len(), 3);
/// assert_eq!(script.steps()[1], FlowStep::Resubstitute { cut_size: 6, depth: 1 });
/// # Ok::<(), glsx_flow::ParseFlowScriptError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FlowScript {
    steps: Vec<FlowStep>,
    /// Per-step effort budgets (`-budget <n>[K|M|G]`, node-visit ticks;
    /// see [`glsx_network::Budget`]), parallel to `steps`.  `None` means
    /// unlimited — the executor may still impose its own default.
    budgets: Vec<Option<u64>>,
    /// Per-step `-trace` marks, parallel to `steps`.  A script that marks
    /// *any* step narrows span recording to exactly the marked steps (see
    /// [`FlowScript::is_traced`]); a script with no marks traces every
    /// step at whatever the tracer's mode records.
    traced: Vec<bool>,
}

impl FlowScript {
    /// Creates a script from explicit steps (all budgets unlimited, no
    /// `-trace` marks).
    pub fn from_steps(steps: Vec<FlowStep>) -> Self {
        let budgets = vec![None; steps.len()];
        let traced = vec![false; steps.len()];
        Self {
            steps,
            budgets,
            traced,
        }
    }

    /// Returns the steps of the script.
    pub fn steps(&self) -> &[FlowStep] {
        &self.steps
    }

    /// The effort budget of step `index` in ticks (`-budget`), or `None`
    /// when the script leaves the step unlimited.
    pub fn budget_of(&self, index: usize) -> Option<u64> {
        self.budgets.get(index).copied().flatten()
    }

    /// Sets the effort budget of step `index` (`None` removes it).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_budget(&mut self, index: usize, budget: Option<u64>) {
        self.budgets[index] = budget;
    }

    /// Whether step `index` carries the `-trace` mark.  Only meaningful
    /// when [`FlowScript::has_traced_steps`] — the traced runners then
    /// force span recording on marked steps and suppress it on the rest.
    pub fn is_traced(&self, index: usize) -> bool {
        self.traced.get(index).copied().unwrap_or(false)
    }

    /// Sets or clears the `-trace` mark of step `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_traced(&mut self, index: usize, traced: bool) {
        self.traced[index] = traced;
    }

    /// `true` when any step carries a `-trace` mark, i.e. the script asks
    /// for selective (per-step) span recording.
    pub fn has_traced_steps(&self) -> bool {
        self.traced.iter().any(|&t| t)
    }

    /// Parses a script in the paper's notation: commands separated by `;`,
    /// where `b`/`bz` is balancing, `rw`/`rwz` rewriting, `rf`/`rfz`
    /// refactoring, `rs -c <n> [-d <k>]` resubstitution and
    /// `fraig [-c <conflicts>]` SAT sweeping with an optional per-pair
    /// conflict budget.
    ///
    /// Every command additionally accepts `-budget <ticks>` — an effort
    /// budget in node-visit ticks with an optional `K`/`M`/`G` suffix
    /// (e.g. `rw -budget 2M`), retrievable per step via
    /// [`FlowScript::budget_of`] and honoured by the budget-aware runners
    /// — and `-trace`, marking the step for selective span recording
    /// ([`FlowScript::is_traced`]).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown commands or malformed options.
    pub fn parse(text: &str) -> Result<Self, ParseFlowScriptError> {
        let mut steps = Vec::new();
        let mut budgets = Vec::new();
        let mut traced = Vec::new();
        for command in text.split(';') {
            let command = command.trim();
            if command.is_empty() {
                continue;
            }
            let mut tokens: Vec<&str> = command.split_whitespace().collect();
            let head = tokens.remove(0);
            // `-budget <n>` and `-trace` are command-independent: extract
            // them before the command-specific option loops
            let mut budget = None;
            let mut trace = false;
            let mut t = 0;
            while t < tokens.len() {
                if tokens[t] == "-budget" {
                    let value = tokens.get(t + 1).ok_or_else(|| ParseFlowScriptError {
                        message: format!("missing value after -budget in `{command}`"),
                    })?;
                    budget = Some(parse_tick_count(value).ok_or_else(|| ParseFlowScriptError {
                        message: format!("invalid budget `{value}` in `{command}`"),
                    })?);
                    tokens.drain(t..t + 2);
                } else if tokens[t] == "-trace" {
                    trace = true;
                    tokens.remove(t);
                } else {
                    t += 1;
                }
            }
            let step = match head {
                "b" | "bz" => FlowStep::Balance,
                "rw" | "rwz" => {
                    let mut parallel = false;
                    let rest = std::mem::take(&mut tokens);
                    for option in rest {
                        match option {
                            "-par" => parallel = true,
                            other => {
                                return Err(ParseFlowScriptError {
                                    message: format!("unknown option `{other}` in `{command}`"),
                                })
                            }
                        }
                    }
                    FlowStep::Rewrite {
                        zero_gain: head == "rwz",
                        parallel,
                    }
                }
                "rf" => FlowStep::Refactor { zero_gain: false },
                "rfz" => FlowStep::Refactor { zero_gain: true },
                "fraig" => {
                    let mut conflict_limit = None;
                    let mut record_choices = false;
                    let rest = std::mem::take(&mut tokens);
                    let mut i = 0;
                    while i < rest.len() {
                        match rest[i] {
                            "-c" => {
                                let value =
                                    rest.get(i + 1).ok_or_else(|| ParseFlowScriptError {
                                        message: format!("missing value after -c in `{command}`"),
                                    })?;
                                let parsed: u64 =
                                    value.parse().map_err(|_| ParseFlowScriptError {
                                        message: format!("invalid number `{value}` in `{command}`"),
                                    })?;
                                conflict_limit = Some(parsed);
                                i += 2;
                            }
                            "-choices" => {
                                record_choices = true;
                                i += 1;
                            }
                            other => {
                                return Err(ParseFlowScriptError {
                                    message: format!("unknown option `{other}` in `{command}`"),
                                })
                            }
                        }
                    }
                    FlowStep::Fraig {
                        conflict_limit,
                        record_choices,
                    }
                }
                "lut_map" => {
                    let mut lut_size = 6usize;
                    let mut use_choices = false;
                    let rest = std::mem::take(&mut tokens);
                    let mut i = 0;
                    while i < rest.len() {
                        match rest[i] {
                            "-k" => {
                                let value =
                                    rest.get(i + 1).ok_or_else(|| ParseFlowScriptError {
                                        message: format!("missing value after -k in `{command}`"),
                                    })?;
                                lut_size = value.parse().map_err(|_| ParseFlowScriptError {
                                    message: format!("invalid number `{value}` in `{command}`"),
                                })?;
                                i += 2;
                            }
                            "-choices" => {
                                use_choices = true;
                                i += 1;
                            }
                            other => {
                                return Err(ParseFlowScriptError {
                                    message: format!("unknown option `{other}` in `{command}`"),
                                })
                            }
                        }
                    }
                    FlowStep::LutMap {
                        lut_size,
                        use_choices,
                    }
                }
                "rs" => {
                    let mut cut_size = 8usize;
                    let mut depth = 1usize;
                    let rest = std::mem::take(&mut tokens);
                    let mut i = 0;
                    while i < rest.len() {
                        match rest[i] {
                            "-c" | "-d" => {
                                let value =
                                    rest.get(i + 1).ok_or_else(|| ParseFlowScriptError {
                                        message: format!(
                                            "missing value after {} in `{command}`",
                                            rest[i]
                                        ),
                                    })?;
                                let parsed: usize =
                                    value.parse().map_err(|_| ParseFlowScriptError {
                                        message: format!("invalid number `{value}` in `{command}`"),
                                    })?;
                                if rest[i] == "-c" {
                                    cut_size = parsed;
                                } else {
                                    depth = parsed;
                                }
                                i += 2;
                            }
                            other => {
                                return Err(ParseFlowScriptError {
                                    message: format!("unknown option `{other}` in `{command}`"),
                                })
                            }
                        }
                    }
                    FlowStep::Resubstitute { cut_size, depth }
                }
                other => {
                    return Err(ParseFlowScriptError {
                        message: format!("unknown command `{other}`"),
                    })
                }
            };
            if !tokens.is_empty() {
                return Err(ParseFlowScriptError {
                    message: format!("unexpected arguments in `{command}`"),
                });
            }
            steps.push(step);
            budgets.push(budget);
            traced.push(trace);
        }
        Ok(Self {
            steps,
            budgets,
            traced,
        })
    }
}

/// Parses a tick count with an optional `K`/`M`/`G` (×10³/10⁶/10⁹)
/// suffix, e.g. `2M` → 2 000 000.  Returns `None` on malformed input or
/// overflow.
fn parse_tick_count(text: &str) -> Option<u64> {
    let (digits, multiplier) = match text.as_bytes().last()? {
        b'K' | b'k' => (&text[..text.len() - 1], 1_000u64),
        b'M' | b'm' => (&text[..text.len() - 1], 1_000_000),
        b'G' | b'g' => (&text[..text.len() - 1], 1_000_000_000),
        _ => (text, 1),
    };
    let value: u64 = digits.parse().ok()?;
    value.checked_mul(multiplier)
}

/// Formats a tick count back into the `-budget` notation, folding exact
/// multiples into the `K`/`M`/`G` suffixes ([`parse_tick_count`]'s
/// inverse on its own output).
fn format_tick_count(ticks: u64) -> String {
    match ticks {
        t if t >= 1_000_000_000 && t % 1_000_000_000 == 0 => format!("{}G", t / 1_000_000_000),
        t if t >= 1_000_000 && t % 1_000_000 == 0 => format!("{}M", t / 1_000_000),
        t if t >= 1_000 && t % 1_000 == 0 => format!("{}K", t / 1_000),
        t => t.to_string(),
    }
}

impl fmt::Display for FlowScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self
            .steps
            .iter()
            .zip(self.budgets.iter().zip(&self.traced))
            .map(|(step, (budget, traced))| {
                let mut text = match step {
                    FlowStep::Balance => "bz".to_string(),
                    FlowStep::Rewrite {
                        zero_gain,
                        parallel,
                    } => {
                        let mut s = if *zero_gain { "rwz" } else { "rw" }.to_string();
                        if *parallel {
                            s.push_str(" -par");
                        }
                        s
                    }
                    FlowStep::Refactor { zero_gain: false } => "rf".to_string(),
                    FlowStep::Refactor { zero_gain: true } => "rfz".to_string(),
                    FlowStep::Resubstitute { cut_size, depth } => {
                        if *depth == 1 {
                            format!("rs -c {cut_size}")
                        } else {
                            format!("rs -c {cut_size} -d {depth}")
                        }
                    }
                    FlowStep::Fraig {
                        conflict_limit,
                        record_choices,
                    } => {
                        let mut s = "fraig".to_string();
                        if let Some(limit) = conflict_limit {
                            s.push_str(&format!(" -c {limit}"));
                        }
                        if *record_choices {
                            s.push_str(" -choices");
                        }
                        s
                    }
                    FlowStep::LutMap {
                        lut_size,
                        use_choices,
                    } => {
                        let mut s = "lut_map".to_string();
                        if *lut_size != 6 {
                            s.push_str(&format!(" -k {lut_size}"));
                        }
                        if *use_choices {
                            s.push_str(" -choices");
                        }
                        s
                    }
                };
                if let Some(ticks) = budget {
                    text.push_str(&format!(" -budget {}", format_tick_count(*ticks)));
                }
                if *traced {
                    text.push_str(" -trace");
                }
                text
            })
            .collect();
        write!(f, "{}", rendered.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_script() {
        let script = FlowScript::parse(
            "bz; rs -c 6; rw; rs -c 6 -d 2; rf; rs -c 8; bz; rs -c 8 -d 2; rw; \
             rs -c 10; rwz; rs -c 10 -d 2; bz; rs -c 12; rfz; rs -c 12 -d 2; rwz; bz",
        )
        .unwrap();
        assert_eq!(script.steps().len(), 18);
        assert_eq!(script.steps()[0], FlowStep::Balance);
        assert_eq!(
            script.steps()[1],
            FlowStep::Resubstitute {
                cut_size: 6,
                depth: 1
            }
        );
        assert_eq!(
            script.steps()[3],
            FlowStep::Resubstitute {
                cut_size: 6,
                depth: 2
            }
        );
        assert_eq!(
            script.steps()[10],
            FlowStep::Rewrite {
                zero_gain: true,
                parallel: false
            }
        );
        assert_eq!(script.steps()[14], FlowStep::Refactor { zero_gain: true });
    }

    #[test]
    fn roundtrips_through_display() {
        let text = "bz; rs -c 6; rw; fraig; rs -c 6 -d 2; rfz";
        let script = FlowScript::parse(text).unwrap();
        assert_eq!(script.to_string(), text);
        assert_eq!(FlowScript::parse(&script.to_string()).unwrap(), script);
    }

    #[test]
    fn parses_fraig_steps() {
        let script = FlowScript::parse("fraig; rw; fraig -c 250").unwrap();
        assert_eq!(
            script.steps()[0],
            FlowStep::Fraig {
                conflict_limit: None,
                record_choices: false,
            }
        );
        assert_eq!(
            script.steps()[2],
            FlowStep::Fraig {
                conflict_limit: Some(250),
                record_choices: false,
            }
        );
        assert_eq!(script.to_string(), "fraig; rw; fraig -c 250");
        assert!(FlowScript::parse("fraig extra").is_err());
        assert!(FlowScript::parse("fraig -c").is_err());
        assert!(FlowScript::parse("fraig -c x").is_err());
    }

    #[test]
    fn parses_choice_steps() {
        let script =
            FlowScript::parse("fraig -choices; fraig -c 9 -choices; lut_map -choices").unwrap();
        assert_eq!(
            script.steps()[0],
            FlowStep::Fraig {
                conflict_limit: None,
                record_choices: true,
            }
        );
        assert_eq!(
            script.steps()[1],
            FlowStep::Fraig {
                conflict_limit: Some(9),
                record_choices: true,
            }
        );
        assert_eq!(
            script.steps()[2],
            FlowStep::LutMap {
                lut_size: 6,
                use_choices: true,
            }
        );
        assert_eq!(
            script.to_string(),
            "fraig -choices; fraig -c 9 -choices; lut_map -choices"
        );
        let script = FlowScript::parse("lut_map -k 4").unwrap();
        assert_eq!(
            script.steps()[0],
            FlowStep::LutMap {
                lut_size: 4,
                use_choices: false,
            }
        );
        assert_eq!(script.to_string(), "lut_map -k 4");
        assert!(FlowScript::parse("lut_map -k").is_err());
        assert!(FlowScript::parse("lut_map -k x").is_err());
        assert!(FlowScript::parse("fraig -choices extra").is_err());
    }

    #[test]
    fn parses_step_budgets() {
        let script =
            FlowScript::parse("rw -budget 2M; rs -c 6 -budget 500; fraig -c 9 -budget 1K; bz")
                .unwrap();
        assert_eq!(script.steps().len(), 4);
        assert_eq!(script.budget_of(0), Some(2_000_000));
        assert_eq!(script.budget_of(1), Some(500));
        assert_eq!(
            script.steps()[1],
            FlowStep::Resubstitute {
                cut_size: 6,
                depth: 1
            }
        );
        assert_eq!(script.budget_of(2), Some(1_000));
        assert_eq!(
            script.steps()[2],
            FlowStep::Fraig {
                conflict_limit: Some(9),
                record_choices: false,
            }
        );
        assert_eq!(script.budget_of(3), None);
        assert_eq!(script.budget_of(99), None);
        // the flag may appear before command-specific options
        let script = FlowScript::parse("rs -budget 3G -c 8 -d 2").unwrap();
        assert_eq!(script.budget_of(0), Some(3_000_000_000));
        assert_eq!(
            script.steps()[0],
            FlowStep::Resubstitute {
                cut_size: 8,
                depth: 2
            }
        );
        assert!(FlowScript::parse("rw -budget").is_err());
        assert!(FlowScript::parse("rw -budget x").is_err());
        assert!(FlowScript::parse("rw -budget 1T").is_err());
    }

    #[test]
    fn parses_trace_marks() {
        let script = FlowScript::parse("bz; rw -trace; rs -c 6 -trace -d 2; fraig").unwrap();
        assert!(!script.is_traced(0));
        assert!(script.is_traced(1));
        assert!(script.is_traced(2));
        assert_eq!(
            script.steps()[2],
            FlowStep::Resubstitute {
                cut_size: 6,
                depth: 2
            }
        );
        assert!(!script.is_traced(3));
        assert!(!script.is_traced(99));
        assert!(script.has_traced_steps());
        assert!(!FlowScript::parse("bz; rw").unwrap().has_traced_steps());
        // composes with -budget in either order
        let script = FlowScript::parse("rw -trace -budget 2M; rf -budget 1K -trace").unwrap();
        assert!(script.is_traced(0) && script.is_traced(1));
        assert_eq!(script.budget_of(0), Some(2_000_000));
        assert_eq!(script.budget_of(1), Some(1_000));
    }

    #[test]
    fn trace_marks_roundtrip_through_display() {
        let text = "bz; rw -trace; rs -c 6 -d 2 -trace; fraig -c 9 -budget 1K -trace";
        let script = FlowScript::parse(text).unwrap();
        assert_eq!(script.to_string(), text);
        assert_eq!(FlowScript::parse(&script.to_string()).unwrap(), script);
    }

    #[test]
    fn budgets_roundtrip_through_display() {
        let text = "rw -budget 2M; rs -c 6; fraig -c 9 -budget 1K; bz -budget 12345";
        let script = FlowScript::parse(text).unwrap();
        assert_eq!(script.to_string(), text);
        assert_eq!(FlowScript::parse(&script.to_string()).unwrap(), script);
    }

    #[test]
    fn parses_parallel_rewrite_steps() {
        let script =
            FlowScript::parse("rw -par; rwz -par; rw; rwz -par -budget 2M -trace").unwrap();
        assert_eq!(
            script.steps()[0],
            FlowStep::Rewrite {
                zero_gain: false,
                parallel: true
            }
        );
        assert_eq!(
            script.steps()[1],
            FlowStep::Rewrite {
                zero_gain: true,
                parallel: true
            }
        );
        assert_eq!(
            script.steps()[2],
            FlowStep::Rewrite {
                zero_gain: false,
                parallel: false
            }
        );
        assert_eq!(
            script.steps()[3],
            FlowStep::Rewrite {
                zero_gain: true,
                parallel: true
            }
        );
        assert_eq!(script.budget_of(3), Some(2_000_000));
        assert!(script.is_traced(3));
        let text = "rw -par; rwz -par; rw; rwz -par -budget 2M -trace";
        assert_eq!(script.to_string(), text);
        assert_eq!(FlowScript::parse(&script.to_string()).unwrap(), script);
        assert!(FlowScript::parse("rw -parallel").is_err());
        assert!(FlowScript::parse("rwz extra").is_err());
    }

    #[test]
    fn rejects_malformed_scripts() {
        assert!(FlowScript::parse("frobnicate").is_err());
        assert!(FlowScript::parse("rs -c").is_err());
        assert!(FlowScript::parse("rs -c x").is_err());
        assert!(FlowScript::parse("rs --cut 6").is_err());
        assert!(FlowScript::parse("rw extra").is_err());
    }

    #[test]
    fn empty_script_is_valid() {
        assert!(FlowScript::parse("").unwrap().steps().is_empty());
        assert!(FlowScript::parse(" ; ; ").unwrap().steps().is_empty());
    }
}
