//! A hand-specialised, AIG-only implementation of the `compress2rs` flow.
//!
//! The paper's Table 1 measures the *overhead of genericity* by comparing
//! the generic flow (instantiated for AIGs) against a tool written
//! specifically for AIGs (ABC).  This module plays the role of that
//! specialised tool: the same pass sequence, but written directly against
//! the [`Aig`] type with AIG-specific shortcuts (AND-only resynthesis,
//! AND-associativity balancing), bypassing the generic interfaces where a
//! dedicated implementation would.

use glsx_core::balancing::{balance, BalanceParams};
use glsx_core::refactoring::{refactor_with, RefactorParams};
use glsx_core::resubstitution::{resubstitute, ResubParams};
use glsx_core::rewriting::{rewrite_with, RewriteParams};
use glsx_network::{cleanup_dangling, Aig, Network};
use glsx_synth::{ChainGateSet, ExactSynthesisParams, NpnDatabase, SopResynthesis};
use std::time::Instant;

use crate::FlowStats;

/// Options of the specialised AIG flow.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpecializedOptions {
    /// Use SAT-based exact synthesis (AND-inverter chains) for the
    /// rewriting database instead of heuristic structures.
    pub exact_rewriting: bool,
}

/// Runs the AIG-specialised `compress2rs` flow.
pub fn specialized_aig_compress2rs(aig: &mut Aig, options: &SpecializedOptions) -> FlowStats {
    let start = Instant::now();
    let mut stats = FlowStats {
        initial_size: aig.num_gates(),
        initial_depth: glsx_network::views::network_depth(aig),
        ..FlowStats::default()
    };
    // AIG-specific rewriting database: AND-inverter chains only, which both
    // shrinks the search space and guarantees replayed structures are
    // already in the AIG's native gate set.
    let mut database = if options.exact_rewriting {
        NpnDatabase::with_exact_synthesis(ExactSynthesisParams {
            gate_set: ChainGateSet::AndInverter,
            max_steps: 6,
            conflict_limit: 20_000,
        })
    } else {
        NpnDatabase::new()
    };
    let rewrite_params = RewriteParams::default();
    let rewrite_z = RewriteParams {
        allow_zero_gain: true,
        ..rewrite_params
    };
    let refactor_params = RefactorParams::default();
    let refactor_z = RefactorParams {
        allow_zero_gain: true,
        ..refactor_params
    };
    let resub = |cut_size: usize, depth: usize| ResubParams {
        max_leaves: cut_size.min(12),
        max_inserts: depth,
        ..ResubParams::default()
    };

    // the compress2rs pass sequence, hard-coded for AIGs
    stats.substitutions += balance(aig, &BalanceParams::default()).rebuilt;
    stats.substitutions += resubstitute(aig, &resub(6, 1)).substitutions;
    stats.substitutions += rewrite_with(aig, &mut database, &rewrite_params).substitutions;
    stats.substitutions += resubstitute(aig, &resub(6, 2)).substitutions;
    stats.substitutions += refactor_with(aig, &mut SopResynthesis, &refactor_params).substitutions;
    stats.substitutions += resubstitute(aig, &resub(8, 1)).substitutions;
    stats.substitutions += balance(aig, &BalanceParams::default()).rebuilt;
    stats.substitutions += resubstitute(aig, &resub(8, 2)).substitutions;
    stats.substitutions += rewrite_with(aig, &mut database, &rewrite_params).substitutions;
    stats.substitutions += resubstitute(aig, &resub(10, 1)).substitutions;
    stats.substitutions += rewrite_with(aig, &mut database, &rewrite_z).substitutions;
    stats.substitutions += resubstitute(aig, &resub(10, 2)).substitutions;
    stats.substitutions += balance(aig, &BalanceParams::default()).rebuilt;
    stats.substitutions += resubstitute(aig, &resub(12, 1)).substitutions;
    stats.substitutions += refactor_with(aig, &mut SopResynthesis, &refactor_z).substitutions;
    stats.substitutions += resubstitute(aig, &resub(12, 2)).substitutions;
    stats.substitutions += rewrite_with(aig, &mut database, &rewrite_z).substitutions;
    stats.substitutions += balance(aig, &BalanceParams::default()).rebuilt;

    *aig = cleanup_dangling(aig);
    stats.final_size = aig.num_gates();
    stats.final_depth = glsx_network::views::network_depth(aig);
    stats.runtime_seconds = start.elapsed().as_secs_f64();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress2rs, FlowOptions};
    use glsx_benchmarks::arithmetic::adder;
    use glsx_benchmarks::control::random_control;
    use glsx_network::simulation::equivalent_by_simulation;

    #[test]
    fn specialized_flow_preserves_functions() {
        let aig: Aig = adder(4);
        let mut optimised = aig.clone();
        let stats = specialized_aig_compress2rs(&mut optimised, &SpecializedOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_simulation(&aig, &optimised));
    }

    #[test]
    fn generic_flow_is_close_to_the_specialized_flow() {
        // the Table-1 claim: the generic flow has only a small overhead
        let aig: Aig = random_control(10, 200, 10, 21);
        let mut generic = aig.clone();
        let mut specialised = aig.clone();
        let g = compress2rs(&mut generic, &FlowOptions::default());
        let s = specialized_aig_compress2rs(&mut specialised, &SpecializedOptions::default());
        assert!(equivalent_by_simulation(&aig, &generic));
        assert!(equivalent_by_simulation(&aig, &specialised));
        // both flows must achieve a reduction, and the generic result must be
        // within 25% of the specialised one on this small control circuit
        assert!(g.final_size < g.initial_size);
        assert!(s.final_size < s.initial_size);
        let ratio = g.final_size as f64 / s.final_size as f64;
        assert!(ratio < 1.25, "generic/specialised size ratio {ratio}");
    }
}
