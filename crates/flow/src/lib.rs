//! # glsx-flow
//!
//! The generic resynthesis flow of the paper: a sequence of balancing,
//! resubstitution, rewriting and refactoring passes modelled after the
//! ABC `compress2rs` area-optimisation script, formulated entirely through
//! the network interface API so that the same script optimises AIGs, XAGs,
//! MIGs and XMGs.
//!
//! The crate also provides a small flow-script language
//! ([`FlowScript::parse`], accepting the `bz; rs -c 6; rw; …` syntax used
//! in the paper), a hand-specialised AIG-only flow
//! ([`specialized::specialized_aig_compress2rs`]) serving as the Table-1
//! baseline, and a [`portfolio_best_luts`] runner that optimises a
//! benchmark with all representations and keeps the best result.
//!
//! # Example
//!
//! ```
//! use glsx_benchmarks::arithmetic::adder;
//! use glsx_flow::{compress2rs, FlowOptions};
//! use glsx_network::{Aig, Network};
//!
//! let mut aig: Aig = adder(4);
//! let stats = compress2rs(&mut aig, &FlowOptions::default());
//! assert!(stats.final_size <= stats.initial_size);
//! ```

mod executor;
mod portfolio;
mod script;
pub mod specialized;

pub use executor::{
    run_script_guarded, run_script_guarded_traced, CheckpointStrategy, FailureKind, FaultAction,
    FaultPlan, FlowReport, GuardOptions, ParseFaultPlanError, RollbackStrategy, StepReport,
    StepStatus, VerifyMode,
};
pub use portfolio::{portfolio_best_luts, portfolio_best_luts_traced, PortfolioResult};
pub use script::{FlowScript, FlowStep, ParseFlowScriptError};

use glsx_core::balancing::{balance_traced, BalanceParams};
use glsx_core::lut_mapping::{lut_map_traced, LutMapParams, LutMapStats};
use glsx_core::refactoring::{refactor_traced, RefactorParams};
use glsx_core::resubstitution::{resubstitute_traced, ResubNetwork, ResubParams};
use glsx_core::rewriting::{rewrite_traced, CutMaintenance, RewriteParams};
use glsx_core::sweeping::{sweep_traced, SweepEngine, SweepParams};
use glsx_core::windowed::rewrite_windowed_traced;
use glsx_network::telemetry::{self, SpanOverride, Tracer};
use glsx_network::{cleanup_dangling, Budget, GateBuilder, Klut, Network, Parallelism};
use glsx_synth::{NpnDatabase, SopResynthesis};
use std::time::Instant;

/// Options of the generic resynthesis flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowOptions {
    /// Maximum cut size used by rewriting.
    pub rewrite_cut_size: usize,
    /// Maximum number of leaves used by refactoring.
    pub refactor_leaves: usize,
    /// Upper bound on resubstitution divisors.
    pub max_divisors: usize,
    /// SAT-sweeping parameters used by `fraig` steps.
    pub sweep: SweepParams,
    /// Run every pass in its *from-scratch* maintenance mode (full cut
    /// rebuilds after each substitution, full signature re-sorts each
    /// sweeping round) instead of the incremental default.  Both modes
    /// produce bit-identical networks; the CI smoke run executes each pass
    /// in both and asserts exactly that.
    pub full_recompute: bool,
    /// Pass-level parallelism of [`portfolio_best_luts`]: the AIG, MIG and
    /// XAG flows are fully independent, so they run on one scoped thread
    /// each, joined in the fixed AIG, MIG, XAG order.  The result is
    /// bit-identical to the serial run at every thread count.  Defaults to
    /// [`Parallelism::from_env`] (the `GLSX_THREADS` knob; serial when
    /// unset).
    pub parallelism: Parallelism,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            rewrite_cut_size: 4,
            refactor_leaves: 10,
            max_divisors: 50,
            sweep: SweepParams::default(),
            full_recompute: false,
            parallelism: Parallelism::from_env(),
        }
    }
}

/// Statistics of a flow run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FlowStats {
    /// Gate count before the flow.
    pub initial_size: usize,
    /// Gate count after the flow.
    pub final_size: usize,
    /// Depth before the flow.
    pub initial_depth: u32,
    /// Depth after the flow.
    pub final_depth: u32,
    /// Wall-clock runtime of the flow in seconds.
    pub runtime_seconds: f64,
    /// Total number of committed substitutions over all passes.
    pub substitutions: usize,
}

/// Runs one step of the flow script on a network and returns the number of
/// committed substitutions (rebuild operations for balancing).  Creates a
/// fresh [`SweepEngine`] per call; [`run_step_with`] recycles one across
/// the `fraig` steps of a flow.
pub fn run_step<N>(ntk: &mut N, step: &FlowStep, options: &FlowOptions) -> usize
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_step_with(ntk, step, options, &mut SweepEngine::new())
}

/// [`run_step`] with a caller-provided [`SweepEngine`]: consecutive
/// `fraig` steps of one flow recycle the engine's simulation pattern
/// words (initial random patterns plus every counterexample already paid
/// for) and its incremental miter solver, so repeated sweeps refine
/// instead of restarting.  Sound within one flow because every pass
/// preserves each node's function over the primary inputs and node ids
/// are never reused; pass a fresh engine per network.
pub fn run_step_with<N>(
    ntk: &mut N,
    step: &FlowStep,
    options: &FlowOptions,
    sweep_engine: &mut SweepEngine,
) -> usize
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_step_budgeted(ntk, step, options, sweep_engine, &Budget::unlimited())
}

/// [`run_step_with`] under a cooperative effort [`Budget`]: the budget is
/// threaded into the pass's budget-aware variant, so an exhausted step
/// stops cleanly between candidates with every committed substitution
/// intact (the pass's `outcome` is readable via [`Budget::outcome`]).
pub fn run_step_budgeted<N>(
    ntk: &mut N,
    step: &FlowStep,
    options: &FlowOptions,
    sweep_engine: &mut SweepEngine,
    budget: &Budget,
) -> usize
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_step_traced(
        ntk,
        step,
        options,
        sweep_engine,
        budget,
        telemetry::global(),
    )
}

/// [`run_step_budgeted`] reporting through an explicit telemetry
/// [`Tracer`]: the step is dispatched to the pass's `*_traced` variant,
/// which records its pass/phase/candidate-batch spans and pours its stats
/// into the tracer's metrics registry.  The plain entry points observe
/// the process-wide `GLSX_TRACE` tracer ([`glsx_network::telemetry::global`]),
/// so this is only needed to aggregate into a private tracer.
pub fn run_step_traced<N>(
    ntk: &mut N,
    step: &FlowStep,
    options: &FlowOptions,
    sweep_engine: &mut SweepEngine,
    budget: &Budget,
    tracer: &Tracer,
) -> usize
where
    N: Network + GateBuilder + ResubNetwork,
{
    match step {
        FlowStep::Balance => {
            let stats = balance_traced(ntk, &BalanceParams::default(), budget, tracer);
            stats.rebuilt
        }
        FlowStep::Rewrite {
            zero_gain,
            parallel,
        } => {
            let mut database = NpnDatabase::new();
            let params = RewriteParams {
                cut_size: options.rewrite_cut_size,
                allow_zero_gain: *zero_gain,
                cut_maintenance: if options.full_recompute {
                    CutMaintenance::FullRecompute
                } else {
                    CutMaintenance::Incremental
                },
                ..RewriteParams::default()
            };
            // the windowed engine is bit-identical to the serial pass at
            // every thread count, so `-par` only changes scheduling
            let stats = if *parallel {
                rewrite_windowed_traced(
                    ntk,
                    &mut database,
                    &params,
                    budget,
                    options.parallelism,
                    tracer,
                )
            } else {
                rewrite_traced(ntk, &mut database, &params, budget, tracer)
            };
            stats.substitutions
        }
        FlowStep::Refactor { zero_gain } => {
            let stats = refactor_traced(
                ntk,
                &mut SopResynthesis,
                &RefactorParams {
                    max_leaves: options.refactor_leaves,
                    allow_zero_gain: *zero_gain,
                    ..RefactorParams::default()
                },
                budget,
                tracer,
            );
            stats.substitutions
        }
        FlowStep::Resubstitute { cut_size, depth } => {
            let stats = resubstitute_traced(
                ntk,
                &ResubParams {
                    max_leaves: (*cut_size).min(12),
                    max_inserts: *depth,
                    max_divisors: options.max_divisors,
                    allow_zero_gain: false,
                },
                budget,
                tracer,
            );
            stats.substitutions
        }
        FlowStep::Fraig {
            conflict_limit,
            record_choices,
        } => {
            let mut params = options.sweep;
            if let Some(limit) = conflict_limit {
                params.conflict_limit = *limit;
            }
            if *record_choices {
                params.record_choices = true;
            }
            if options.full_recompute {
                params.incremental_classes = false;
            }
            let stats = sweep_traced(ntk, &params, sweep_engine, budget, tracer);
            stats.proven
        }
        // mapping changes the representation and is consumed by
        // `run_script_and_map` as the terminal step; inside an in-place
        // pass sequence it has nothing to do
        FlowStep::LutMap { .. } => 0,
    }
}

/// Runs a complete flow script on a network and returns statistics.  The
/// network is compacted (dangling logic removed) at the end — note that
/// the compaction rebuild also drops choice rings recorded by
/// `fraig -choices` steps, so flows that should *map over* the recorded
/// choices use [`run_script_and_map`] (which maps before compacting);
/// [`FlowStep::LutMap`] steps are skipped here for the same reason.
///
/// Consecutive `fraig` steps share one [`SweepEngine`] (pattern words and
/// miter solver recycled) unless [`FlowOptions::full_recompute`] selects
/// the from-scratch reference, which gives every step a fresh engine.
pub fn run_script<N>(ntk: &mut N, script: &FlowScript, options: &FlowOptions) -> FlowStats
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_script_traced(ntk, script, options, telemetry::global())
}

/// Applies the script's selective `-trace` marks for step `index`: when
/// the script marks any step ([`FlowScript::has_traced_steps`]), span
/// recording is forced on the marked steps and suppressed on the rest.
/// The caller resets the override with [`clear_step_overrides`].
pub(crate) fn apply_step_override(tracer: &Tracer, script: &FlowScript, index: usize) {
    if script.has_traced_steps() {
        tracer.set_span_override(if script.is_traced(index) {
            SpanOverride::Force
        } else {
            SpanOverride::Suppress
        });
    }
}

/// Undoes [`apply_step_override`] after the last step of a script.
pub(crate) fn clear_step_overrides(tracer: &Tracer, script: &FlowScript) {
    if script.has_traced_steps() {
        tracer.set_span_override(SpanOverride::ModeDefault);
    }
}

/// [`run_script`] reporting through an explicit telemetry [`Tracer`]
/// (see [`run_step_traced`]); `-trace` marks in the script narrow span
/// recording to exactly the marked steps.
pub fn run_script_traced<N>(
    ntk: &mut N,
    script: &FlowScript,
    options: &FlowOptions,
    tracer: &Tracer,
) -> FlowStats
where
    N: Network + GateBuilder + ResubNetwork,
{
    let start = Instant::now();
    // a bulk-loaded network materialises its deferred fanout lists and
    // strash table here, before any pass traverses fanouts
    ntk.ensure_derived_state();
    let mut stats = FlowStats {
        initial_size: ntk.num_gates(),
        initial_depth: glsx_network::views::network_depth(ntk),
        ..FlowStats::default()
    };
    let mut engine = SweepEngine::new();
    for (index, step) in script.steps().iter().enumerate() {
        if options.full_recompute {
            engine.reset();
        }
        let budget = match script.budget_of(index) {
            Some(ticks) => Budget::with_ticks(ticks),
            None => Budget::unlimited(),
        };
        apply_step_override(tracer, script, index);
        stats.substitutions += run_step_traced(ntk, step, options, &mut engine, &budget, tracer);
    }
    clear_step_overrides(tracer, script);
    *ntk = cleanup_dangling(ntk);
    stats.final_size = ntk.num_gates();
    stats.final_depth = glsx_network::views::network_depth(ntk);
    stats.runtime_seconds = start.elapsed().as_secs_f64();
    stats
}

/// Runs a flow script that ends in LUT mapping: every optimisation step is
/// executed in place ([`run_step_with`], one shared [`SweepEngine`]), then
/// the network is mapped **before** the compaction rebuild, so choice
/// rings recorded by `fraig -choices` steps are still alive when the
/// mapper selects over them.  The mapping parameters come from the
/// script's trailing [`FlowStep::LutMap`] step (or `defaults` when the
/// script ends without one); a `lut_map` step anywhere but last is
/// rejected by debug assertion and skipped.
///
/// Returns the flow statistics, the mapped network and the mapping
/// statistics.
pub fn run_script_and_map<N>(
    ntk: &mut N,
    script: &FlowScript,
    options: &FlowOptions,
    defaults: &LutMapParams,
) -> (FlowStats, Klut, LutMapStats)
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_script_and_map_traced(ntk, script, options, defaults, telemetry::global())
}

/// [`run_script_and_map`] reporting through an explicit telemetry
/// [`Tracer`] (see [`run_step_traced`]); the terminal mapping records its
/// `lut_map` span and stats on the same tracer.
pub fn run_script_and_map_traced<N>(
    ntk: &mut N,
    script: &FlowScript,
    options: &FlowOptions,
    defaults: &LutMapParams,
    tracer: &Tracer,
) -> (FlowStats, Klut, LutMapStats)
where
    N: Network + GateBuilder + ResubNetwork,
{
    let start = Instant::now();
    let mut stats = FlowStats {
        initial_size: ntk.num_gates(),
        initial_depth: glsx_network::views::network_depth(ntk),
        ..FlowStats::default()
    };
    let mut map_params = *defaults;
    let steps = script.steps();
    let passes = match steps.last() {
        Some(FlowStep::LutMap {
            lut_size,
            use_choices,
        }) => {
            map_params.lut_size = *lut_size;
            map_params.use_choices = *use_choices;
            &steps[..steps.len() - 1]
        }
        _ => steps,
    };
    let mut engine = SweepEngine::new();
    for (index, step) in passes.iter().enumerate() {
        debug_assert!(
            !matches!(step, FlowStep::LutMap { .. }),
            "lut_map must be the final step of a mapping script"
        );
        if options.full_recompute {
            engine.reset();
        }
        // `passes` is a prefix of the script, so indices line up
        let budget = match script.budget_of(index) {
            Some(ticks) => Budget::with_ticks(ticks),
            None => Budget::unlimited(),
        };
        apply_step_override(tracer, script, index);
        stats.substitutions += run_step_traced(ntk, step, options, &mut engine, &budget, tracer);
    }
    // a trailing `lut_map -trace` mark applies to the mapping itself; a
    // selective script without one keeps the defaults-mapping suppressed
    if script.has_traced_steps() {
        if steps.len() > passes.len() {
            apply_step_override(tracer, script, steps.len() - 1);
        } else {
            tracer.set_span_override(SpanOverride::Suppress);
        }
    }
    let (klut, map_stats) = lut_map_traced(ntk, &map_params, &Budget::unlimited(), tracer);
    clear_step_overrides(tracer, script);
    *ntk = cleanup_dangling(ntk);
    stats.final_size = ntk.num_gates();
    stats.final_depth = glsx_network::views::network_depth(ntk);
    stats.runtime_seconds = start.elapsed().as_secs_f64();
    (stats, klut, map_stats)
}

/// The paper's generic area-optimisation flow, modelled after ABC's
/// `compress2rs`:
///
/// ```text
/// bz; rs -c 6; rw; rs -c 6 -d 2; rf; rs -c 8; bz; rs -c 8 -d 2; rw;
/// rs -c 10; rwz; rs -c 10 -d 2; bz; rs -c 12; rfz; rs -c 12 -d 2; rwz; bz
/// ```
pub fn compress2rs_script() -> FlowScript {
    FlowScript::parse(
        "bz; rs -c 6; rw; rs -c 6 -d 2; rf; rs -c 8; bz; rs -c 8 -d 2; rw; \
         rs -c 10; rwz; rs -c 10 -d 2; bz; rs -c 12; rfz; rs -c 12 -d 2; rwz; bz",
    )
    .expect("the built-in script is well-formed")
}

/// Runs the `compress2rs`-style generic flow on a network.
pub fn compress2rs<N>(ntk: &mut N, options: &FlowOptions) -> FlowStats
where
    N: Network + GateBuilder + ResubNetwork,
{
    run_script(ntk, &compress2rs_script(), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::{adder, multiplier};
    use glsx_benchmarks::control::random_control;
    use glsx_network::simulation::{equivalent_by_random_simulation, equivalent_by_simulation};
    use glsx_network::{convert_network, Aig, Mig, Xag};

    #[test]
    fn compress2rs_shrinks_an_adder_in_every_representation() {
        let aig: Aig = adder(4);
        let mut opt_aig = aig.clone();
        let stats = compress2rs(&mut opt_aig, &FlowOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_simulation(&aig, &opt_aig));

        let mig: Mig = convert_network(&aig);
        let mut opt_mig = mig.clone();
        let stats = compress2rs(&mut opt_mig, &FlowOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_simulation(&aig, &opt_mig));

        let xag: Xag = convert_network(&aig);
        let mut opt_xag = xag.clone();
        let stats = compress2rs(&mut opt_xag, &FlowOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_simulation(&aig, &opt_xag));
    }

    #[test]
    fn flow_preserves_function_of_control_logic() {
        let aig: Aig = random_control(12, 120, 10, 99);
        let mut optimised = aig.clone();
        let stats = compress2rs(&mut optimised, &FlowOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_random_simulation(&aig, &optimised, 16, 3));
    }

    #[test]
    fn fraig_steps_remove_injected_redundancy() {
        let mut aig: Aig = adder(4);
        glsx_benchmarks::inject_redundancy(&mut aig, 6, 0x5117);
        let reference = aig.clone();
        let script = FlowScript::parse("fraig").unwrap();
        let stats = run_script(&mut aig, &script, &FlowOptions::default());
        assert!(
            stats.substitutions >= 1,
            "sweeping must merge injected duplicates: {stats:?}"
        );
        assert!(stats.final_size < stats.initial_size, "{stats:?}");
        assert!(equivalent_by_random_simulation(&reference, &aig, 8, 0xF1));
        assert!(glsx_core::sweeping::check_equivalence(&reference, &aig).is_equivalent());
    }

    /// `fraig -c <n>` threads the conflict budget from the script into
    /// the sweep: with a one-conflict budget the structurally distinct
    /// parity pair cannot be proven, with the default budget it merges.
    #[test]
    fn fraig_conflict_budget_is_script_controllable() {
        let build = || {
            let mut aig = Aig::new();
            let pis: Vec<glsx_network::Signal> = (0..6).map(|_| aig.create_pi()).collect();
            let mut chain = pis[0];
            for &pi in &pis[1..] {
                chain = aig.create_xor(chain, pi);
            }
            let mut layer = pis.clone();
            while layer.len() > 1 {
                let mut next = Vec::new();
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 {
                        aig.create_xor(pair[0], pair[1])
                    } else {
                        pair[0]
                    });
                }
                layer = next;
            }
            aig.create_po(chain);
            aig.create_po(layer[0]);
            aig
        };
        let mut starved = build();
        let before = starved.num_gates();
        let script = FlowScript::parse("fraig -c 1").unwrap();
        let merges = run_script(&mut starved, &script, &FlowOptions::default()).substitutions;
        assert_eq!(merges, 0, "a one-conflict budget must skip the pair");
        assert_eq!(starved.num_gates(), before);

        let mut generous = build();
        let script = FlowScript::parse("fraig").unwrap();
        let merges = run_script(&mut generous, &script, &FlowOptions::default()).substitutions;
        assert!(merges >= 1, "the default budget proves the parity pair");
        assert!(generous.num_gates() < before);
    }

    /// The incremental and from-scratch flow modes produce bit-identical
    /// networks for every step kind.
    #[test]
    fn full_recompute_flow_matches_incremental_flow() {
        let mut incremental: Aig = adder(4);
        glsx_benchmarks::inject_redundancy(&mut incremental, 4, 0xF00D);
        let mut full = incremental.clone();
        let script = FlowScript::parse("fraig; rw; rs -c 6; rwz").unwrap();
        let inc_stats = run_script(&mut incremental, &script, &FlowOptions::default());
        let full_stats = run_script(
            &mut full,
            &script,
            &FlowOptions {
                full_recompute: true,
                ..FlowOptions::default()
            },
        );
        assert_eq!(inc_stats.substitutions, full_stats.substitutions);
        assert_eq!(incremental.num_gates(), full.num_gates());
        assert!(glsx_core::sweeping::check_equivalence(&incremental, &full).is_equivalent());
    }

    /// The `fraig -choices; lut_map -choices` script path: choices are
    /// recorded, survive until mapping, the mapped result is miter-proven
    /// equivalent to the source, and it never uses more LUTs than the
    /// choices-off reference flow.
    #[test]
    fn choice_flow_maps_over_recorded_choices() {
        let mut source: Aig = adder(4);
        glsx_benchmarks::inject_restructured(&mut source, 4, 0xc01c);
        let reference = source.clone();

        let on_script = FlowScript::parse("fraig -choices; lut_map -k 4 -choices").unwrap();
        let off_script = FlowScript::parse("fraig; lut_map -k 4").unwrap();
        let defaults = glsx_core::lut_mapping::LutMapParams::with_lut_size(4);

        let mut on_ntk = source.clone();
        let (on_flow, on_klut, on_stats) =
            run_script_and_map(&mut on_ntk, &on_script, &FlowOptions::default(), &defaults);
        assert!(
            on_flow.substitutions >= 1,
            "fraig must prove the alternatives"
        );
        let mut off_ntk = source.clone();
        let (_, off_klut, off_stats) = run_script_and_map(
            &mut off_ntk,
            &off_script,
            &FlowOptions::default(),
            &defaults,
        );

        assert!(
            glsx_core::sweeping::check_equivalence(&reference, &on_klut).is_equivalent(),
            "choices-on mapping broke the function"
        );
        assert!(
            glsx_core::sweeping::check_equivalence(&reference, &off_klut).is_equivalent(),
            "choices-off mapping broke the function"
        );
        assert!(
            on_stats.num_luts <= off_stats.num_luts,
            "choices must never cost LUTs: {on_stats:?} vs {off_stats:?}"
        );
        // the optimised in-place networks are compacted after mapping
        assert!(!on_ntk.has_choices() || on_ntk.num_choice_nodes() == 0);
    }

    /// A script without a trailing `lut_map` maps with the provided
    /// defaults, and plain `run_script` skips `lut_map` steps entirely.
    #[test]
    fn mapping_scripts_degrade_gracefully() {
        let defaults = glsx_core::lut_mapping::LutMapParams::with_lut_size(6);
        let mut aig: Aig = adder(3);
        let reference = aig.clone();
        let script = FlowScript::parse("rw").unwrap();
        let (_, klut, _) =
            run_script_and_map(&mut aig, &script, &FlowOptions::default(), &defaults);
        assert!(glsx_core::sweeping::check_equivalence(&reference, &klut).is_equivalent());

        let mut aig: Aig = adder(3);
        let with_map = FlowScript::parse("rw; lut_map").unwrap();
        let stats = run_script(&mut aig, &with_map, &FlowOptions::default());
        assert!(stats.final_size <= stats.initial_size);
        assert!(equivalent_by_simulation(&reference, &aig));
    }

    #[test]
    fn single_steps_can_be_run_in_isolation() {
        let mut aig: Aig = multiplier(3);
        let before = aig.num_gates();
        let script = FlowScript::parse("rw; rs -c 8; bz").unwrap();
        let stats = run_script(&mut aig, &script, &FlowOptions::default());
        assert_eq!(stats.initial_size, before);
        assert_eq!(stats.final_size, aig.num_gates());
        assert!(stats.final_size <= before);
    }
}
