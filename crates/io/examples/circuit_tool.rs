//! Command-line circuit file tool over the streaming I/O layer.
//!
//! Converts, inspects, and verifies circuits stored in any of the three
//! on-disk formats this crate speaks, dispatched by file extension:
//!
//! | extension | format                              |
//! |-----------|-------------------------------------|
//! | `.aag`    | ASCII AIGER                         |
//! | `.aig`    | binary AIGER                        |
//! | `.gbc`    | packed block-structured GBC         |
//!
//! Commands:
//!
//! - `convert <input> <output>` — re-encode a circuit between formats.
//! - `info <file>` — print a header summary.  For GBC files this reads
//!   only the header and block index ([`read_gbc_info`]) without decoding
//!   a single gate, so it is instant even on million-gate files.
//! - `verify <a> <b>` — prove two files implement the same function:
//!   exhaustive simulation for small input counts, a SAT miter otherwise.
//!
//! AIGER carries AIGs only; GBC stores any two-input or three-input
//! representation.  `info` works on every GBC file, while `convert` and
//! `verify` load AIG payloads.
//!
//! Run with
//! `cargo run --release -p glsx-io --example circuit_tool -- info file.gbc`

use std::fs;
use std::io::Cursor;
use std::process::ExitCode;

use glsx_core::{check_equivalence, EquivalenceResult};
use glsx_io::{
    read_aiger, read_gbc, read_gbc_info, write_aiger, write_aiger_binary, write_gbc, CircuitKind,
};
use glsx_network::simulation::{equivalent_by_simulation, MAX_EXHAUSTIVE_PIS};
use glsx_network::views::DepthView;
use glsx_network::{Aig, Network};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    AsciiAiger,
    BinaryAiger,
    Gbc,
}

impl Format {
    fn of(path: &str) -> Result<Self, String> {
        match path.rsplit('.').next() {
            Some("aag") => Ok(Self::AsciiAiger),
            Some("aig") => Ok(Self::BinaryAiger),
            Some("gbc") => Ok(Self::Gbc),
            _ => Err(format!(
                "{path}: unknown extension (expected .aag, .aig, or .gbc)"
            )),
        }
    }
}

fn load_aig(path: &str) -> Result<Aig, String> {
    let bytes = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    match Format::of(path)? {
        Format::AsciiAiger | Format::BinaryAiger => {
            read_aiger(&bytes).map_err(|e| format!("{path}: {e}"))
        }
        Format::Gbc => {
            let info = read_gbc_info(Cursor::new(&bytes)).map_err(|e| format!("{path}: {e}"))?;
            if info.kind != CircuitKind::Aig {
                return Err(format!(
                    "{path}: holds a {} circuit; only AIG payloads convert to/from AIGER",
                    info.kind
                ));
            }
            read_gbc::<Aig>(&bytes)
                .map(|(aig, _depth)| aig)
                .map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn convert(input: &str, output: &str) -> Result<(), String> {
    let aig = load_aig(input)?;
    let bytes = match Format::of(output)? {
        Format::AsciiAiger => write_aiger(&aig).into_bytes(),
        Format::BinaryAiger => write_aiger_binary(&aig),
        Format::Gbc => write_gbc(&aig).map_err(|e| format!("{output}: {e}"))?,
    };
    fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{input} -> {output}: {} PIs, {} gates, {} POs, {} bytes",
        aig.num_pis(),
        aig.num_gates(),
        aig.num_pos(),
        bytes.len()
    );
    Ok(())
}

fn info(path: &str) -> Result<(), String> {
    if Format::of(path)? == Format::Gbc {
        // Header + block index only — no gate record is decoded.
        let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let info = read_gbc_info(file).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: GBC ({})", info.kind);
        println!("  inputs    {}", info.num_pis);
        println!("  gates     {}", info.num_gates);
        println!("  outputs   {}", info.num_pos);
        println!("  depth     {}", info.max_level);
        println!("  blocks    {}", info.num_blocks);
        println!("  bytes     {}", info.bytes);
        return Ok(());
    }
    let aig = load_aig(path)?;
    let depth = DepthView::new(&aig);
    println!("{path}: AIGER (aig)");
    println!("  inputs    {}", aig.num_pis());
    println!("  gates     {}", aig.num_gates());
    println!("  outputs   {}", aig.num_pos());
    println!("  depth     {}", depth.depth());
    Ok(())
}

fn verify(path_a: &str, path_b: &str) -> Result<(), String> {
    let a = load_aig(path_a)?;
    let b = load_aig(path_b)?;
    if a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos() {
        return Err(format!(
            "interface mismatch: {path_a} has {}/{} PIs/POs, {path_b} has {}/{}",
            a.num_pis(),
            a.num_pos(),
            b.num_pis(),
            b.num_pos()
        ));
    }
    if a.num_pis() <= MAX_EXHAUSTIVE_PIS {
        if equivalent_by_simulation(&a, &b) {
            println!("EQUIVALENT ({} inputs, exhaustive simulation)", a.num_pis());
            return Ok(());
        }
        return Err(format!("{path_a} and {path_b} differ (simulation)"));
    }
    match check_equivalence(&a, &b).result {
        EquivalenceResult::Equivalent => {
            println!("EQUIVALENT ({} inputs, SAT miter)", a.num_pis());
            Ok(())
        }
        EquivalenceResult::Inequivalent(_) => {
            Err(format!("{path_a} and {path_b} differ (SAT counterexample)"))
        }
        EquivalenceResult::Unknown => Err(format!(
            "{path_a} vs {path_b}: undecided within the solver budget"
        )),
    }
}

fn usage() -> String {
    "usage: circuit_tool convert <input> <output>\n       \
     circuit_tool info <file>\n       \
     circuit_tool verify <a> <b>\n\
     formats by extension: .aag (ASCII AIGER), .aig (binary AIGER), .gbc (packed)"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [cmd, input, output] if cmd == "convert" => convert(input, output),
        [cmd, path] if cmd == "info" => info(path),
        [cmd, a, b] if cmd == "verify" => verify(a, b),
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
