//! GBC — the workspace's packed streaming binary circuit format.
//!
//! GBC is block-structured so million-gate circuits can be streamed,
//! skipped through, and later parallel-decoded without touching the whole
//! file.  All integers are little-endian.
//!
//! ```text
//! header (24 bytes)
//!   magic      4 bytes  "GBC1"
//!   kind       u8       CircuitKind code (0 aig, 1 xag, 2 mig, 3 xmg)
//!   flags      u8       reserved, 0
//!   k          u16      gate arity of the representation (2 or 3)
//!   num_pis    u32
//!   num_gates  u32      patched at finish time
//!   num_pos    u32      patched at finish time
//!   num_blocks u32      patched at finish time
//! num_blocks × block
//!   gate_count u32      ≤ 65536 (BLOCK_GATES)
//!   first_id   u32      stream id of the block's first gate
//!   max_level  u32      deepest gate level in the block (index record)
//!   width      u8       bytes per fanin delta in this block (1..=4)
//!   body_len   u32      bytes of body that follow
//!   body
//!     kind bits         ⌈gate_count/8⌉ bytes, only for two-kind
//!                       representations (xag, xmg); bit i set = gate i is
//!                       the alternate kind (xor/xor3), clear = default
//!                       (and/maj); LSB-first within each byte
//!     deltas            gate_count × k × width bytes
//! num_pos × u32         primary-output literals
//! ```
//!
//! Gate records use the dense stream id space of
//! [`crate::stream`]: id 0 is the constant, ids `1..=num_pis` the inputs,
//! gates consecutive after that.  Each fanin is stored as the *delta*
//! `2·id − fanin_literal`, where `id` is the gate's own stream id and
//! `fanin_literal` is the fanin's complemented-edge literal
//! ([`Signal::literal`]).  Because streams are topologically sorted the
//! delta is always ≥ 1, stays small for the local wiring that dominates
//! real circuits, and each block stores all its deltas at the narrowest
//! fixed width that fits — fixed-width-per-block decodes in a tight loop
//! (no per-byte branch as with varints) while staying within ~1 byte per
//! fanin on typical circuits.
//!
//! The per-block `first_id`/`max_level` index records let
//! [`read_gbc_info`] summarise a file (and a future parallel decoder split
//! it) by reading 17-byte block headers and seeking past bodies.

use crate::stream::{CircuitHeader, CircuitSink, CircuitSource, IoError, Record};
use crate::NetworkSource;
use glsx_network::views::DepthView;
use glsx_network::{
    BulkError, BulkTarget, CircuitKind, FaninArray, GateKind, NetworkBuilder, Signal,
};
use std::io::{Cursor, Read, Seek, SeekFrom, Write};

/// Magic bytes opening every GBC file.
pub const GBC_MAGIC: [u8; 4] = *b"GBC1";

/// Gates per block (the block is the unit of streaming and skipping).
pub const BLOCK_GATES: usize = 64 * 1024;

const HEADER_LEN: u64 = 24;

fn write_u32(out: &mut impl Write, value: u32) -> Result<(), IoError> {
    out.write_all(&value.to_le_bytes())?;
    Ok(())
}

/// Validates a GBC file header, returning the stream header and the block
/// count.
fn parse_header(header_bytes: &[u8; HEADER_LEN as usize]) -> Result<(CircuitHeader, u32), IoError> {
    if header_bytes[..4] != GBC_MAGIC {
        return Err(IoError::format("bad magic (not a GBC file)"));
    }
    let kind = CircuitKind::from_code(header_bytes[4])
        .ok_or_else(|| IoError::format(format!("unknown kind code {}", header_bytes[4])))?;
    let k = u16::from_le_bytes([header_bytes[6], header_bytes[7]]) as usize;
    if k != kind.max_arity() {
        return Err(IoError::format(format!(
            "arity {k} does not match representation {kind}"
        )));
    }
    let field = |i: usize| u32::from_le_bytes(header_bytes[i..i + 4].try_into().expect("4 bytes"));
    let header = CircuitHeader {
        kind,
        num_pis: field(8),
        num_gates: field(12),
        num_pos: field(16),
    };
    Ok((header, field(20)))
}

/// Slices `len` bytes at `*at`, advancing the offset; truncation surfaces
/// as the same unexpected-EOF error `read_exact` would produce.
fn take<'a>(bytes: &'a [u8], at: &mut usize, len: usize) -> Result<&'a [u8], IoError> {
    let end = at
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| IoError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
    let slice = &bytes[*at..end];
    *at = end;
    Ok(slice)
}

/// Streaming GBC writer (a [`CircuitSink`] over any `Write + Seek`
/// destination — seeking is needed once, to patch the true counts into
/// the header at finish time).
pub struct GbcWriter<W: Write + Seek> {
    out: W,
    header_pos: u64,
    kind: CircuitKind,
    arity: usize,
    has_kind_bits: bool,
    /// Stream level per stream id (the writer levelises so each block's
    /// index record can carry its max level).
    levels: Vec<u32>,
    /// Buffered records of the current block.
    block: Vec<(GateKind, FaninArray)>,
    block_first_id: u32,
    num_gates: u32,
    num_blocks: u32,
    pos: Vec<u32>,
    started: bool,
}

impl<W: Write + Seek> GbcWriter<W> {
    /// Wraps a destination; the stream starts at the current position.
    pub fn new(out: W) -> Self {
        Self {
            out,
            header_pos: 0,
            kind: CircuitKind::Aig,
            arity: 2,
            has_kind_bits: false,
            levels: Vec::new(),
            block: Vec::new(),
            block_first_id: 0,
            num_gates: 0,
            num_blocks: 0,
            pos: Vec::new(),
            started: false,
        }
    }

    fn next_id(&self) -> u32 {
        self.levels.len() as u32
    }

    fn flush_block(&mut self) -> Result<(), IoError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let gate_count = self.block.len();
        // compute the deltas and the narrowest width that fits them all
        let mut deltas = Vec::with_capacity(gate_count * self.arity);
        let mut max_delta = 0u32;
        let mut max_level = 0u32;
        for (i, (_, fanins)) in self.block.iter().enumerate() {
            let id = self.block_first_id + i as u32;
            max_level = max_level.max(self.levels[id as usize]);
            for f in fanins.iter() {
                let delta = 2 * id - f.literal();
                max_delta = max_delta.max(delta);
                deltas.push(delta);
            }
        }
        let width = match max_delta {
            0..=0xFF => 1u8,
            0x100..=0xFFFF => 2,
            0x1_0000..=0xFF_FFFF => 3,
            _ => 4,
        };
        let kind_bits_len = if self.has_kind_bits {
            gate_count.div_ceil(8)
        } else {
            0
        };
        let body_len = kind_bits_len + deltas.len() * width as usize;
        write_u32(&mut self.out, gate_count as u32)?;
        write_u32(&mut self.out, self.block_first_id)?;
        write_u32(&mut self.out, max_level)?;
        self.out.write_all(&[width])?;
        write_u32(&mut self.out, body_len as u32)?;
        if self.has_kind_bits {
            let mut bits = vec![0u8; kind_bits_len];
            for (i, (kind, _)) in self.block.iter().enumerate() {
                if Some(*kind) == self.kind.alternate_gate() {
                    bits[i / 8] |= 1 << (i % 8);
                }
            }
            self.out.write_all(&bits)?;
        }
        let mut body = Vec::with_capacity(deltas.len() * width as usize);
        for delta in deltas {
            body.extend_from_slice(&delta.to_le_bytes()[..width as usize]);
        }
        self.out.write_all(&body)?;
        self.block_first_id += gate_count as u32;
        self.num_blocks += 1;
        self.block.clear();
        Ok(())
    }
}

impl<W: Write + Seek> CircuitSink for GbcWriter<W> {
    type Output = W;

    fn begin(&mut self, header: &CircuitHeader) -> Result<(), IoError> {
        self.kind = header.kind;
        self.arity = header.kind.max_arity();
        self.has_kind_bits = header.kind.alternate_gate().is_some();
        self.header_pos = self.out.stream_position()?;
        self.out.write_all(&GBC_MAGIC)?;
        self.out.write_all(&[header.kind.code(), 0])?;
        self.out.write_all(&(self.arity as u16).to_le_bytes())?;
        write_u32(&mut self.out, header.num_pis)?;
        write_u32(&mut self.out, 0)?; // num_gates, patched at finish
        write_u32(&mut self.out, 0)?; // num_pos, patched at finish
        write_u32(&mut self.out, 0)?; // num_blocks, patched at finish
        self.levels = vec![0u32; 1 + header.num_pis as usize];
        self.levels.reserve(header.num_gates as usize);
        self.block_first_id = self.next_id();
        self.started = true;
        Ok(())
    }

    fn gate(&mut self, kind: GateKind, fanins: &[Signal]) -> Result<(), IoError> {
        self.gate_owned(kind, FaninArray::from_slice(fanins))
    }

    fn gate_owned(&mut self, kind: GateKind, fanins: FaninArray) -> Result<(), IoError> {
        if !self.started {
            return Err(IoError::format("gate record before stream header"));
        }
        if !self.kind.accepts(kind) {
            return Err(IoError::format(format!(
                "{} streams cannot carry {kind} gates",
                self.kind
            )));
        }
        if fanins.len() != self.arity {
            return Err(IoError::format(format!(
                "{kind} record has {} fanins, {} requires {}",
                fanins.len(),
                self.kind,
                self.arity
            )));
        }
        let id = self.next_id();
        let mut level = 0u32;
        for f in fanins.iter() {
            if f.node() >= id {
                return Err(IoError::format(format!(
                    "gate {id} references node {} before its definition",
                    f.node()
                )));
            }
            level = level.max(self.levels[f.node() as usize]);
        }
        self.levels.push(level + 1);
        self.block.push((kind, fanins));
        self.num_gates += 1;
        if self.block.len() == BLOCK_GATES {
            self.flush_block()?;
        }
        Ok(())
    }

    fn output(&mut self, signal: Signal) -> Result<(), IoError> {
        if signal.node() >= self.next_id() {
            return Err(IoError::format(format!(
                "output references undefined node {}",
                signal.node()
            )));
        }
        self.pos.push(signal.literal());
        Ok(())
    }

    fn finish(mut self) -> Result<W, IoError> {
        if !self.started {
            return Err(IoError::format("stream finished before its header"));
        }
        self.flush_block()?;
        for lit in &self.pos {
            write_u32(&mut self.out, *lit)?;
        }
        let end = self.out.stream_position()?;
        self.out.seek(SeekFrom::Start(self.header_pos + 12))?;
        write_u32(&mut self.out, self.num_gates)?;
        write_u32(&mut self.out, self.pos.len() as u32)?;
        write_u32(&mut self.out, self.num_blocks)?;
        self.out.seek(SeekFrom::Start(end))?;
        Ok(self.out)
    }
}

/// Streaming GBC reader (a [`CircuitSource`] over any `Read`): decodes one
/// block at a time, levelising and validating as records are produced.
pub struct GbcReader<R: Read> {
    input: R,
    header: CircuitHeader,
    kind: CircuitKind,
    arity: usize,
    /// Stream level per stream id (recomputed for index-record validation;
    /// also what makes this a *levelizing* reader).
    levels: Vec<u32>,
    blocks_left: u32,
    /// Decoded records of the current block, consumed front to back.
    pending: std::vec::IntoIter<Record>,
    pos_left: u32,
    gates_seen: u32,
}

impl<R: Read> GbcReader<R> {
    /// Parses the file header and positions the reader before the first
    /// block.
    ///
    /// # Errors
    ///
    /// Fails on a bad magic, unknown representation code or inconsistent
    /// arity.
    pub fn new(mut input: R) -> Result<Self, IoError> {
        let mut header_bytes = [0u8; HEADER_LEN as usize];
        input.read_exact(&mut header_bytes)?;
        let (header, blocks_left) = parse_header(&header_bytes)?;
        let kind = header.kind;
        let k = kind.max_arity();
        let mut levels = vec![0u32; 1 + header.num_pis as usize];
        levels.reserve(header.num_gates as usize);
        Ok(Self {
            input,
            header,
            kind,
            arity: k,
            levels,
            blocks_left,
            pending: Vec::new().into_iter(),
            pos_left: header.num_pos,
            gates_seen: 0,
        })
    }

    fn read_u32(&mut self) -> Result<u32, IoError> {
        let mut buf = [0u8; 4];
        self.input.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Decodes the next block into `pending`.
    fn decode_block(&mut self) -> Result<(), IoError> {
        let gate_count = self.read_u32()? as usize;
        let first_id = self.read_u32()?;
        let declared_max_level = self.read_u32()?;
        let mut small = [0u8; 1];
        self.input.read_exact(&mut small)?;
        let width = small[0] as usize;
        let body_len = self.read_u32()? as usize;
        if gate_count == 0 || gate_count > BLOCK_GATES {
            return Err(IoError::format(format!(
                "bad block gate count {gate_count}"
            )));
        }
        if !(1..=4).contains(&width) {
            return Err(IoError::format(format!("bad delta width {width}")));
        }
        if first_id != self.levels.len() as u32 {
            return Err(IoError::format(format!(
                "block first id {first_id} does not continue the stream (expected {})",
                self.levels.len()
            )));
        }
        let has_kind_bits = self.kind.alternate_gate().is_some();
        let kind_bits_len = if has_kind_bits {
            gate_count.div_ceil(8)
        } else {
            0
        };
        if body_len != kind_bits_len + gate_count * self.arity * width {
            return Err(IoError::format(format!("bad block body length {body_len}")));
        }
        let mut body = vec![0u8; body_len];
        self.input.read_exact(&mut body)?;
        let (kind_bits, deltas) = body.split_at(kind_bits_len);
        let mut records = Vec::with_capacity(gate_count);
        let mut max_level = 0u32;
        for i in 0..gate_count {
            let id = first_id + i as u32;
            let kind = if has_kind_bits && kind_bits[i / 8] & (1 << (i % 8)) != 0 {
                self.kind
                    .alternate_gate()
                    .expect("kind bits imply an alternate gate")
            } else {
                self.kind.default_gate()
            };
            let mut fanins = FaninArray::new();
            let mut level = 0u32;
            for j in 0..self.arity {
                let at = (i * self.arity + j) * width;
                let mut raw = [0u8; 4];
                raw[..width].copy_from_slice(&deltas[at..at + width]);
                let delta = u32::from_le_bytes(raw);
                if delta == 0 || delta > 2 * id {
                    return Err(IoError::format(format!(
                        "gate {id}: delta {delta} out of range"
                    )));
                }
                let literal = 2 * id - delta;
                let fanin = Signal::from_literal(literal);
                level = level.max(self.levels[fanin.node() as usize]);
                fanins.push(fanin);
            }
            self.levels.push(level + 1);
            max_level = max_level.max(level + 1);
            records.push(Record::Gate { kind, fanins });
        }
        if max_level != declared_max_level {
            return Err(IoError::format(format!(
                "block index declares max level {declared_max_level}, records reach {max_level}"
            )));
        }
        self.gates_seen += gate_count as u32;
        self.blocks_left -= 1;
        self.pending = records.into_iter();
        Ok(())
    }
}

impl<R: Read> CircuitSource for GbcReader<R> {
    fn header(&self) -> &CircuitHeader {
        &self.header
    }

    fn next_record(&mut self) -> Result<Option<Record>, IoError> {
        loop {
            if let Some(record) = self.pending.next() {
                return Ok(Some(record));
            }
            if self.blocks_left > 0 {
                self.decode_block()?;
                continue;
            }
            if self.gates_seen != self.header.num_gates {
                return Err(IoError::format(format!(
                    "header promises {} gates, blocks carry {}",
                    self.header.num_gates, self.gates_seen
                )));
            }
            if self.pos_left > 0 {
                self.pos_left -= 1;
                let literal = self.read_u32()?;
                let signal = Signal::from_literal(literal);
                if signal.node() as usize >= self.levels.len() {
                    return Err(IoError::format(format!(
                        "output references undefined node {}",
                        signal.node()
                    )));
                }
                return Ok(Some(Record::Output(signal)));
            }
            return Ok(None);
        }
    }
}

/// Summary of a GBC file, gathered from the header and the per-block
/// index records alone (block bodies are seeked past, not decoded).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GbcInfo {
    /// Representation of the stored circuit.
    pub kind: CircuitKind,
    /// Primary inputs.
    pub num_pis: u32,
    /// Gate records.
    pub num_gates: u32,
    /// Primary outputs.
    pub num_pos: u32,
    /// Blocks in the file.
    pub num_blocks: u32,
    /// Deepest gate level (max over the block index records).
    pub max_level: u32,
    /// Total encoded size in bytes, header to last output literal.
    pub bytes: u64,
}

/// Reads a [`GbcInfo`] summary without decoding any gate records.
///
/// # Errors
///
/// Fails on malformed headers or truncated block structure.
pub fn read_gbc_info<R: Read + Seek>(mut input: R) -> Result<GbcInfo, IoError> {
    let start = input.stream_position()?;
    let reader = GbcReader::new(&mut input)?;
    let header = *reader.header();
    let num_blocks = reader.blocks_left;
    drop(reader);
    input.seek(SeekFrom::Start(start + HEADER_LEN))?;
    let mut max_level = 0u32;
    for _ in 0..num_blocks {
        let mut block_header = [0u8; 17];
        input.read_exact(&mut block_header)?;
        let field =
            |i: usize| u32::from_le_bytes(block_header[i..i + 4].try_into().expect("4 bytes"));
        max_level = max_level.max(field(8));
        let body_len = field(13);
        input.seek(SeekFrom::Current(body_len as i64))?;
    }
    input.seek(SeekFrom::Current(4 * header.num_pos as i64))?;
    let bytes = input.stream_position()? - start;
    Ok(GbcInfo {
        kind: header.kind,
        num_pis: header.num_pis,
        num_gates: header.num_gates,
        num_pos: header.num_pos,
        num_blocks,
        max_level,
        bytes,
    })
}

/// Serialises a network to GBC bytes (streams it through [`GbcWriter`]).
///
/// # Errors
///
/// Fails only on record-contract violations (in-memory writes cannot
/// fail).
pub fn write_gbc<N: BulkTarget>(ntk: &N) -> Result<Vec<u8>, IoError> {
    let mut source = NetworkSource::new(ntk);
    let cursor = crate::stream::transfer(&mut source, GbcWriter::new(Cursor::new(Vec::new())))?;
    Ok(cursor.into_inner())
}

/// Deserialises GBC bytes through the strash-free bulk loader, yielding
/// the network and its free [`DepthView`].
///
/// This is the fused fast path: blocks decode straight into the
/// [`NetworkBuilder`], skipping the [`Record`] queue and the
/// [`CircuitSource`]/[`CircuitSink`] plumbing of the generic
/// [`GbcReader`] (which remains the way to pump GBC bytes into *other*
/// sinks).  Validation is identical — same checks, same messages.
///
/// # Errors
///
/// Fails on malformed bytes or representation mismatch with `N`.
/// Decodes one block's gate records straight into `builder`, returning
/// the maximum gate level the block reached.
///
/// Monomorphised over the representation arity and the block's delta
/// width so the hot loop has constant offsets, a constant mask and a
/// fixed-size fanin array; [`read_gbc`] dispatches on the runtime pair.
fn decode_block_gates<const ARITY: usize, const WIDTH: usize>(
    builder: &mut NetworkBuilder,
    deltas: &[u8],
    kind_bits: &[u8],
    default_gate: GateKind,
    alternate_gate: Option<GateKind>,
    first_id: u32,
    gate_count: usize,
) -> Result<u32, IoError> {
    let mask = if WIDTH == 4 {
        u32::MAX
    } else {
        (1u32 << (8 * WIDTH)) - 1
    };
    let mut max_level = 0u32;
    for i in 0..gate_count {
        let id = first_id + i as u32;
        let kind = match alternate_gate {
            Some(alt) if kind_bits[i / 8] & (1 << (i % 8)) != 0 => alt,
            _ => default_gate,
        };
        let mut lits = [Signal::from_literal(0); ARITY];
        for (j, lit) in lits.iter_mut().enumerate() {
            let off = (i * ARITY + j) * WIDTH;
            // fixed-width little-endian decode: a full 4-byte load masked
            // to `WIDTH` bytes everywhere it fits, the padded copy only at
            // the very end of the block body
            let delta = if off + 4 <= deltas.len() {
                u32::from_le_bytes(deltas[off..off + 4].try_into().expect("4 bytes")) & mask
            } else {
                let mut raw = [0u8; 4];
                raw[..WIDTH].copy_from_slice(&deltas[off..off + WIDTH]);
                u32::from_le_bytes(raw)
            };
            if delta == 0 || delta > 2 * id {
                return Err(IoError::format(format!(
                    "gate {id}: delta {delta} out of range"
                )));
            }
            *lit = Signal::from_literal(2 * id - delta);
        }
        let signal = builder.add_gate_fixed(kind, lits)?;
        max_level = max_level.max(builder.level(signal.node()));
    }
    Ok(max_level)
}

pub fn read_gbc<N: BulkTarget>(bytes: &[u8]) -> Result<(N, DepthView), IoError> {
    let mut at = 0usize;
    let header_bytes: [u8; HEADER_LEN as usize] = take(bytes, &mut at, HEADER_LEN as usize)?
        .try_into()
        .expect("sized slice");
    let (header, num_blocks) = parse_header(&header_bytes)?;
    if header.kind != N::KIND {
        return Err(IoError::Bulk(BulkError::RepresentationMismatch {
            builder: header.kind,
            target: N::KIND,
        }));
    }
    let arity = header.kind.max_arity();
    let default_gate = header.kind.default_gate();
    let alternate_gate = header.kind.alternate_gate();
    let mut builder =
        NetworkBuilder::with_capacity(N::KIND, header.num_pis as usize, header.num_gates as usize);
    for _ in 0..header.num_pis {
        builder.add_pi();
    }
    let first_gate = 1 + header.num_pis;
    let mut gates_seen = 0u32;
    for _ in 0..num_blocks {
        let block_header = take(bytes, &mut at, 17)?;
        let field =
            |i: usize| u32::from_le_bytes(block_header[i..i + 4].try_into().expect("4 bytes"));
        let gate_count = field(0) as usize;
        let first_id = field(4);
        let declared_max_level = field(8);
        let width = block_header[12] as usize;
        let body_len = field(13) as usize;
        if gate_count == 0 || gate_count > BLOCK_GATES {
            return Err(IoError::format(format!(
                "bad block gate count {gate_count}"
            )));
        }
        if !(1..=4).contains(&width) {
            return Err(IoError::format(format!("bad delta width {width}")));
        }
        if first_id != builder.num_nodes() as u32 {
            return Err(IoError::format(format!(
                "block first id {first_id} does not continue the stream (expected {})",
                builder.num_nodes()
            )));
        }
        let kind_bits_len = if alternate_gate.is_some() {
            gate_count.div_ceil(8)
        } else {
            0
        };
        if body_len != kind_bits_len + gate_count * arity * width {
            return Err(IoError::format(format!("bad block body length {body_len}")));
        }
        let body = take(bytes, &mut at, body_len)?;
        let (kind_bits, deltas) = body.split_at(kind_bits_len);
        // dispatch into a decode loop monomorphised over (arity, width):
        // the offset arithmetic constant-folds, the mask is a constant and
        // the fanin array is built from a fixed-size stack array, which is
        // worth ~25% of the decode phase on a million-gate ingest
        let max_level = match (arity, width) {
            (2, 1) => decode_block_gates::<2, 1>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (2, 2) => decode_block_gates::<2, 2>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (2, 3) => decode_block_gates::<2, 3>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (2, 4) => decode_block_gates::<2, 4>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (3, 1) => decode_block_gates::<3, 1>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (3, 2) => decode_block_gates::<3, 2>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (3, 3) => decode_block_gates::<3, 3>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            (3, 4) => decode_block_gates::<3, 4>(
                &mut builder,
                deltas,
                kind_bits,
                default_gate,
                alternate_gate,
                first_id,
                gate_count,
            ),
            _ => {
                return Err(IoError::format(format!(
                    "unsupported arity {arity} / delta width {width} combination"
                )))
            }
        }?;
        if max_level != declared_max_level {
            return Err(IoError::format(format!(
                "block index declares max level {declared_max_level}, records reach {max_level}"
            )));
        }
        gates_seen += gate_count as u32;
    }
    if gates_seen != header.num_gates {
        return Err(IoError::format(format!(
            "header promises {} gates, blocks carry {}",
            header.num_gates, gates_seen
        )));
    }
    for _ in 0..header.num_pos {
        let literal = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().expect("4 bytes"));
        let signal = Signal::from_literal(literal);
        if signal.node() as usize >= builder.num_nodes() {
            return Err(IoError::format(format!(
                "output references undefined node {}",
                signal.node()
            )));
        }
        builder.add_po(signal)?;
    }
    let (ntk, levels) = builder.finish_with_levels::<N>()?;
    let view = DepthView::from_levels_dense(&ntk, levels, first_gate);
    Ok((ntk, view))
}
