//! Netlist writers: BLIF and structural Verilog, the usual hand-off
//! formats towards technology mapping and downstream synthesis tools.

use glsx_network::{GateKind, Network, NodeId, Signal};
use glsx_truth::isop;

/// Serialises any network in BLIF: every gate becomes a `.names` block
/// whose cover is derived from the gate's local function.
pub fn write_blif<N: Network>(ntk: &N, model_name: &str) -> String {
    let mut out = format!(".model {model_name}\n");
    let name = |n: NodeId| format!("n{n}");
    out.push_str(".inputs");
    for pi in ntk.pi_nodes() {
        out.push_str(&format!(" {}", name(pi)));
    }
    out.push('\n');
    out.push_str(".outputs");
    for i in 0..ntk.num_pos() {
        out.push_str(&format!(" po{i}"));
    }
    out.push('\n');
    // constant zero driver (only if referenced)
    out.push_str(&format!(".names {}\n", name(0)));
    for node in ntk.gate_nodes() {
        let fanins = ntk.fanins(node);
        out.push_str(".names");
        for f in &fanins {
            out.push_str(&format!(" {}", name(f.node())));
        }
        out.push_str(&format!(" {}\n", name(node)));
        // local function with edge complementations folded in
        let mut function = ntk.node_function(node);
        for (i, f) in fanins.iter().enumerate() {
            if f.is_complemented() {
                function = function.flip(i);
            }
        }
        for cube in isop(&function).cubes() {
            let mut row = String::new();
            for i in 0..fanins.len() {
                row.push(if !cube.has_literal(i) {
                    '-'
                } else if cube.polarity(i) {
                    '1'
                } else {
                    '0'
                });
            }
            out.push_str(&format!("{row} 1\n"));
        }
    }
    for (i, po) in ntk.po_signals().iter().enumerate() {
        out.push_str(&format!(".names {} po{i}\n", name(po.node())));
        out.push_str(if po.is_complemented() {
            "0 1\n"
        } else {
            "1 1\n"
        });
    }
    out.push_str(".end\n");
    out
}

/// Serialises any network as structural Verilog using `assign` statements.
pub fn write_verilog<N: Network>(ntk: &N, module_name: &str) -> String {
    let name = |n: NodeId| format!("n{n}");
    let expr = |s: Signal| {
        if s.is_complemented() {
            format!("~{}", name(s.node()))
        } else {
            name(s.node())
        }
    };
    let mut out = format!("module {module_name}(");
    let ports: Vec<String> = ntk
        .pi_nodes()
        .iter()
        .map(|&pi| name(pi))
        .chain((0..ntk.num_pos()).map(|i| format!("po{i}")))
        .collect();
    out.push_str(&ports.join(", "));
    out.push_str(");\n");
    for pi in ntk.pi_nodes() {
        out.push_str(&format!("  input {};\n", name(pi)));
    }
    for i in 0..ntk.num_pos() {
        out.push_str(&format!("  output po{i};\n"));
    }
    out.push_str(&format!("  wire {} = 1'b0;\n", name(0)));
    for node in ntk.gate_nodes() {
        let fanins = ntk.fanins(node);
        let rhs = match ntk.gate_kind(node) {
            GateKind::And => format!("{} & {}", expr(fanins[0]), expr(fanins[1])),
            GateKind::Xor => format!("{} ^ {}", expr(fanins[0]), expr(fanins[1])),
            GateKind::Xor3 => format!(
                "{} ^ {} ^ {}",
                expr(fanins[0]),
                expr(fanins[1]),
                expr(fanins[2])
            ),
            GateKind::Maj => {
                let (a, b, c) = (expr(fanins[0]), expr(fanins[1]), expr(fanins[2]));
                format!("({a} & {b}) | ({a} & {c}) | ({b} & {c})")
            }
            GateKind::Lut | GateKind::Constant | GateKind::Input => {
                // LUTs are expressed as a sum of products of their cover
                let mut function = ntk.node_function(node);
                for (i, f) in fanins.iter().enumerate() {
                    if f.is_complemented() {
                        function = function.flip(i);
                    }
                }
                let cubes = isop(&function);
                if cubes.is_empty() {
                    "1'b0".to_string()
                } else {
                    cubes
                        .cubes()
                        .iter()
                        .map(|cube| {
                            let literals: Vec<String> = (0..fanins.len())
                                .filter(|&i| cube.has_literal(i))
                                .map(|i| {
                                    if cube.polarity(i) {
                                        name(fanins[i].node())
                                    } else {
                                        format!("~{}", name(fanins[i].node()))
                                    }
                                })
                                .collect();
                            if literals.is_empty() {
                                "1'b1".to_string()
                            } else {
                                format!("({})", literals.join(" & "))
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" | ")
                }
            }
        };
        out.push_str(&format!("  wire {} = {};\n", name(node), rhs));
    }
    for (i, po) in ntk.po_signals().iter().enumerate() {
        out.push_str(&format!("  assign po{i} = {};\n", expr(*po)));
    }
    out.push_str("endmodule\n");
    out
}
