//! AIGER interchange for And-inverter graphs: the ASCII (`aag`) and
//! binary (`aig`) variants of the format the EPFL benchmark suites are
//! distributed in.
//!
//! Both readers go through the robust [`BuilderSink`]-style path
//! (`create_and` per gate) rather than the bulk loader: external files
//! are untrusted, may carry structurally duplicate or constant-foldable
//! ANDs, and binary AIGER's rhs ordering (`rhs0 ≥ rhs1`) differs from
//! this workspace's normalisation, so every gate is re-normalised and
//! re-hashed on ingest.
//!
//! # Accepted grammar (ASCII)
//!
//! [`read_aiger`] accepts a superset of the strict format:
//!
//! * header `aag M I L O A` (`L` must be 0 — the library is
//!   combinational; latch declarations are rejected),
//! * exactly `I` input literals, `O` output literals and `A` AND
//!   definitions of three literals each, as whitespace-separated decimal
//!   tokens — *any* whitespace (spaces, tabs, `\r`, blank lines, several
//!   numbers per line) separates tokens, not just the strict
//!   one-line-per-record layout,
//! * AND definitions in **any order**, as long as every fanin is
//!   eventually defined (the strict format requires fanins to precede
//!   uses; this reader resolves out-of-order definitions iteratively and
//!   rejects only genuinely cyclic or undefined ones),
//! * each literal defined at most once, all literals ≤ `2·M + 1`,
//! * an optional symbol/comment section after the last AND definition,
//!   which is ignored.

use glsx_network::{Aig, GateBuilder, Network, NodeId, Signal};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error returned when parsing an AIGER file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    message: String,
}

impl ParseAigerError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER input: {}", self.message)
    }
}

impl Error for ParseAigerError {}

/// Dense literal assignment shared by both writers: inputs first, then
/// the live gates in topological order.
fn dense_literals(aig: &Aig) -> (HashMap<NodeId, u32>, Vec<NodeId>) {
    let mut literal: HashMap<NodeId, u32> = HashMap::new();
    literal.insert(0, 0);
    let mut next_index = 1u32;
    for pi in aig.pi_nodes() {
        literal.insert(pi, 2 * next_index);
        next_index += 1;
    }
    let gates = aig.gate_nodes();
    for &gate in &gates {
        literal.insert(gate, 2 * next_index);
        next_index += 1;
    }
    (literal, gates)
}

fn lit_of(literal: &HashMap<NodeId, u32>, s: Signal) -> u32 {
    literal[&s.node()] + s.is_complemented() as u32
}

/// Serialises an AIG in the ASCII AIGER format (`aag` header).
///
/// Node indices are re-numbered densely: inputs first, then gates in
/// topological order, matching the format's requirements.
pub fn write_aiger(aig: &Aig) -> String {
    let (literal, gates) = dense_literals(aig);
    let max_index = aig.num_pis() + gates.len();
    let mut out = format!(
        "aag {} {} 0 {} {}\n",
        max_index,
        aig.num_pis(),
        aig.num_pos(),
        gates.len()
    );
    for pi in aig.pi_nodes() {
        out.push_str(&format!("{}\n", literal[&pi]));
    }
    for po in aig.po_signals() {
        out.push_str(&format!("{}\n", lit_of(&literal, po)));
    }
    for &gate in &gates {
        let fanins = aig.fanins(gate);
        out.push_str(&format!(
            "{} {} {}\n",
            literal[&gate],
            lit_of(&literal, fanins[0]),
            lit_of(&literal, fanins[1])
        ));
    }
    out
}

fn push_varint(out: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        out.push((value & 0x7F) as u8 | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Serialises an AIG in the binary AIGER format (`aig` header): inputs
/// are implicit, each AND stores two LEB128 varint deltas
/// (`lhs − rhs0`, `rhs0 − rhs1` with `rhs0 ≥ rhs1`), typically ~3 bytes
/// per gate instead of ~15 in ASCII.
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    let (literal, gates) = dense_literals(aig);
    let num_inputs = aig.num_pis();
    let max_index = num_inputs + gates.len();
    let mut out = format!(
        "aig {} {} 0 {} {}\n",
        max_index,
        num_inputs,
        aig.num_pos(),
        gates.len()
    )
    .into_bytes();
    for po in aig.po_signals() {
        out.extend_from_slice(format!("{}\n", lit_of(&literal, po)).as_bytes());
    }
    for &gate in &gates {
        let lhs = literal[&gate];
        let fanins = aig.fanins(gate);
        let (lit0, lit1) = (lit_of(&literal, fanins[0]), lit_of(&literal, fanins[1]));
        let (rhs0, rhs1) = (lit0.max(lit1), lit0.min(lit1));
        debug_assert!(lhs > rhs0, "dense topological order guarantees lhs > rhs0");
        push_varint(&mut out, lhs - rhs0);
        push_varint(&mut out, rhs0 - rhs1);
    }
    out
}

/// Parses an AIGER file — ASCII (`aag`) or binary (`aig`), sniffed from
/// the header — into an [`Aig`].
///
/// Latches are not supported (the library handles combinational logic
/// only); symbol and comment sections are ignored.  The ASCII variant is
/// whitespace- and order-tolerant; see the
/// [module docs](self) for the exact accepted grammar.
///
/// # Errors
///
/// Returns an error on malformed headers, out-of-range or duplicate
/// literals, latch declarations, truncated binary data or undefined
/// fanins.
pub fn read_aiger(input: impl AsRef<[u8]>) -> Result<Aig, ParseAigerError> {
    let bytes = input.as_ref();
    if bytes.starts_with(b"aig ") || bytes.starts_with(b"aig\t") {
        read_aiger_binary(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ParseAigerError::new("ASCII AIGER input is not valid UTF-8"))?;
        read_aiger_ascii(text)
    }
}

struct Header {
    max_index: usize,
    num_inputs: usize,
    num_outputs: usize,
    num_ands: usize,
}

fn parse_number(s: &str) -> Result<usize, ParseAigerError> {
    s.parse()
        .map_err(|_| ParseAigerError::new(format!("invalid number `{s}`")))
}

fn parse_header<'a>(
    tag: &str,
    mut fields: impl Iterator<Item = &'a str>,
) -> Result<Header, ParseAigerError> {
    let mut next = |what: &str| {
        fields
            .next()
            .ok_or_else(|| ParseAigerError::new(format!("header is missing the {what} count")))
    };
    if next("format")? != tag {
        return Err(ParseAigerError::new(format!("expected an `{tag}` header")));
    }
    let max_index = parse_number(next("maximum index")?)?;
    let num_inputs = parse_number(next("input")?)?;
    let num_latches = parse_number(next("latch")?)?;
    let num_outputs = parse_number(next("output")?)?;
    let num_ands = parse_number(next("AND")?)?;
    if num_latches != 0 {
        return Err(ParseAigerError::new("latches are not supported"));
    }
    if max_index < num_inputs + num_ands {
        return Err(ParseAigerError::new(format!(
            "maximum index {max_index} is below inputs + ANDs ({})",
            num_inputs + num_ands
        )));
    }
    Ok(Header {
        max_index,
        num_inputs,
        num_outputs,
        num_ands,
    })
}

fn read_aiger_ascii(text: &str) -> Result<Aig, ParseAigerError> {
    // records are plain whitespace-separated decimal tokens: consuming a
    // token stream (instead of exact lines) tolerates blank lines, `\r`,
    // extra spaces and several records per line for free.  The symbol/
    // comment section begins at the first non-numeric token after the
    // last AND definition and is never reached below.
    let text = text.trim_start();
    let (header_line, rest) = text.split_once('\n').unwrap_or((text, ""));
    let header = parse_header("aag", header_line.split_whitespace())?;
    let mut tokens = rest.split_whitespace();
    let mut next_literal = |what: &str| -> Result<usize, ParseAigerError> {
        let token = tokens
            .next()
            .ok_or_else(|| ParseAigerError::new(format!("missing {what}")))?;
        let lit = parse_number(token)?;
        if lit / 2 > header.max_index {
            return Err(ParseAigerError::new(format!(
                "literal {lit} exceeds maximum index {}",
                header.max_index
            )));
        }
        Ok(lit)
    };

    let mut aig = Aig::new();
    let mut signals: Vec<Option<Signal>> = vec![None; header.max_index + 1];
    signals[0] = Some(aig.get_constant(false));
    for _ in 0..header.num_inputs {
        let lit = next_literal("input literal")?;
        if lit % 2 != 0 {
            return Err(ParseAigerError::new(format!("invalid input literal {lit}")));
        }
        if signals[lit / 2].is_some() {
            return Err(ParseAigerError::new(format!(
                "literal {lit} defined more than once"
            )));
        }
        signals[lit / 2] = Some(aig.create_pi());
    }
    let mut output_literals = Vec::with_capacity(header.num_outputs);
    for _ in 0..header.num_outputs {
        output_literals.push(next_literal("output literal")?);
    }
    let mut and_definitions = Vec::with_capacity(header.num_ands);
    let mut defined = vec![false; header.max_index + 1];
    for _ in 0..header.num_ands {
        let lhs = next_literal("AND definition")?;
        let rhs0 = next_literal("AND fanin")?;
        let rhs1 = next_literal("AND fanin")?;
        if lhs % 2 != 0 {
            return Err(ParseAigerError::new(format!(
                "AND defines complemented literal {lhs}"
            )));
        }
        if signals[lhs / 2].is_some() || defined[lhs / 2] {
            return Err(ParseAigerError::new(format!(
                "literal {lhs} defined more than once"
            )));
        }
        defined[lhs / 2] = true;
        and_definitions.push((lhs, rhs0, rhs1));
    }
    // ANDs may be listed in any order in which every fanin is eventually
    // defined; resolve iteratively
    let mut remaining = and_definitions;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&(lhs, rhs0, rhs1)| {
            let resolve = |lit: usize, signals: &[Option<Signal>]| -> Option<Signal> {
                signals
                    .get(lit / 2)
                    .copied()
                    .flatten()
                    .map(|s| s.complement_if(lit % 2 == 1))
            };
            match (resolve(rhs0, &signals), resolve(rhs1, &signals)) {
                (Some(a), Some(b)) => {
                    let gate = aig.create_and(a, b);
                    signals[lhs / 2] = Some(gate);
                    false
                }
                _ => true,
            }
        });
        if remaining.len() == before {
            return Err(ParseAigerError::new("cyclic or undefined AND definitions"));
        }
    }
    for lit in output_literals {
        let signal = signals
            .get(lit / 2)
            .copied()
            .flatten()
            .ok_or_else(|| ParseAigerError::new(format!("undefined output literal {lit}")))?;
        aig.create_po(signal.complement_if(lit % 2 == 1));
    }
    Ok(aig)
}

fn read_aiger_binary(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    // the header and the output literals are ASCII lines; everything
    // after them is the varint-packed AND section
    let mut pos = 0usize;
    let mut next_line = |what: &str| -> Result<&str, ParseAigerError> {
        let start = pos;
        let end = bytes[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| start + i)
            .ok_or_else(|| ParseAigerError::new(format!("truncated before {what}")))?;
        pos = end + 1;
        std::str::from_utf8(&bytes[start..end])
            .map_err(|_| ParseAigerError::new(format!("{what} is not valid ASCII")))
    };
    let header = parse_header("aig", next_line("header")?.split_whitespace())?;
    if header.max_index != header.num_inputs + header.num_ands {
        return Err(ParseAigerError::new(format!(
            "binary AIGER requires M = I + A (got M={}, I={}, A={})",
            header.max_index, header.num_inputs, header.num_ands
        )));
    }
    let mut output_literals = Vec::with_capacity(header.num_outputs);
    for _ in 0..header.num_outputs {
        let line = next_line("output literal")?;
        let lit = parse_number(line.trim())?;
        if lit / 2 > header.max_index {
            return Err(ParseAigerError::new(format!(
                "literal {lit} exceeds maximum index {}",
                header.max_index
            )));
        }
        output_literals.push(lit);
    }

    let mut aig = Aig::new();
    let mut signals: Vec<Signal> = Vec::with_capacity(header.max_index + 1);
    signals.push(aig.get_constant(false));
    for _ in 0..header.num_inputs {
        let pi = aig.create_pi();
        signals.push(pi);
    }
    let mut read_varint = |what: u32| -> Result<u32, ParseAigerError> {
        let mut value = 0u32;
        let mut shift = 0u32;
        loop {
            let byte = *bytes
                .get(pos)
                .ok_or_else(|| ParseAigerError::new(format!("truncated in AND {what}")))?;
            pos += 1;
            if shift >= 32 || (shift == 28 && byte & 0x7F > 0x0F) {
                return Err(ParseAigerError::new(format!(
                    "varint overflow in AND {what}"
                )));
            }
            value |= u32::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    for i in 0..header.num_ands {
        // the definition order and lhs literals are implicit in binary
        // AIGER: gate i defines literal 2·(I + 1 + i)
        let lhs = 2 * (header.num_inputs as u32 + 1 + i as u32);
        let delta0 = read_varint(lhs)?;
        if delta0 == 0 || delta0 > lhs {
            return Err(ParseAigerError::new(format!(
                "AND {lhs}: delta {delta0} out of range"
            )));
        }
        let rhs0 = lhs - delta0;
        let delta1 = read_varint(lhs)?;
        if delta1 > rhs0 {
            return Err(ParseAigerError::new(format!(
                "AND {lhs}: delta {delta1} out of range"
            )));
        }
        let rhs1 = rhs0 - delta1;
        let resolve =
            |lit: u32| -> Signal { signals[(lit / 2) as usize].complement_if(lit % 2 == 1) };
        let gate = aig.create_and(resolve(rhs0), resolve(rhs1));
        signals.push(gate);
    }
    for lit in output_literals {
        let signal = signals
            .get(lit / 2)
            .copied()
            .ok_or_else(|| ParseAigerError::new(format!("undefined output literal {lit}")))?;
        aig.create_po(signal.complement_if(lit % 2 == 1));
    }
    Ok(aig)
}
