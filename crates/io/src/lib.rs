//! # glsx-io
//!
//! Interchange formats and the streaming ingest layer for the logic
//! networks of this workspace:
//!
//! * **Streaming record layer** ([`stream`]): the [`CircuitSink`]/
//!   [`CircuitSource`] trait pair every format and every network
//!   representation meets in, so files, generators and networks compose
//!   without intermediate in-memory copies.  [`NetworkSink`] feeds the
//!   strash-free bulk loader ([`glsx_network::bulk`]) and levelises on
//!   ingest; [`BuilderSink`] is the robust per-gate path for untrusted
//!   input.
//! * **GBC** ([`gbc`]): the workspace's block-structured packed binary
//!   circuit format — per-block index records (offset, id range, max
//!   level) make million-gate files streamable and skippable
//!   ([`write_gbc`], [`read_gbc`], [`read_gbc_info`]).
//! * **AIGER** ([`aiger`]): ASCII (`aag`) and binary (`aig`) variants of
//!   the format the EPFL benchmark suites are distributed in
//!   ([`write_aiger`], [`write_aiger_binary`], [`read_aiger`] — the
//!   reader sniffs the variant and tolerates whitespace and definition
//!   order beyond the strict grammar).
//! * **Netlists** ([`netlist`]): BLIF ([`write_blif`]) for any network
//!   (gates are emitted as truth-table covers) and structural Verilog
//!   ([`write_verilog`]) for quick inspection and downstream synthesis
//!   tools.
//!
//! # Example
//!
//! ```
//! use glsx_io::{read_aiger, read_gbc, write_aiger, write_gbc};
//! use glsx_network::{Aig, GateBuilder, Network};
//! use glsx_network::simulation::equivalent_by_simulation;
//!
//! let mut aig = Aig::new();
//! let a = aig.create_pi();
//! let b = aig.create_pi();
//! let f = aig.create_and(a, !b);
//! aig.create_po(!f);
//!
//! // ASCII AIGER (robust path, re-normalises on read)
//! let text = write_aiger(&aig);
//! let back = read_aiger(&text)?;
//! assert!(equivalent_by_simulation(&aig, &back));
//!
//! // GBC (bulk path: strash-free ingest, free depth view)
//! let bytes = write_gbc(&aig).unwrap();
//! let (back, depth) = read_gbc::<Aig>(&bytes).unwrap();
//! assert!(equivalent_by_simulation(&aig, &back));
//! assert_eq!(depth.depth(), 1);
//! # Ok::<(), glsx_io::ParseAigerError>(())
//! ```

pub mod aiger;
pub mod gbc;
pub mod netlist;
pub mod stream;

pub use aiger::{read_aiger, write_aiger, write_aiger_binary, ParseAigerError};
pub use gbc::{read_gbc, read_gbc_info, write_gbc, GbcInfo, GbcReader, GbcWriter};
pub use glsx_network::CircuitKind;
pub use netlist::{write_blif, write_verilog};
pub use stream::{
    transfer, BuilderSink, CircuitHeader, CircuitSink, CircuitSource, IoError, NetworkSink,
    NetworkSource, Record,
};

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::adder;
    use glsx_core::lut_mapping::{lut_map, LutMapParams};
    use glsx_network::simulation::equivalent_by_simulation;
    use glsx_network::views::DepthView;
    use glsx_network::{Aig, GateBuilder, Mig, Network, Xag};

    #[test]
    fn aiger_roundtrip_preserves_function() {
        let aig: Aig = adder(4);
        let text = write_aiger(&aig);
        assert!(text.starts_with("aag "));
        let back = read_aiger(&text).unwrap();
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert!(equivalent_by_simulation(&aig, &back));
    }

    #[test]
    fn binary_aiger_roundtrip_matches_ascii() {
        let aig: Aig = adder(4);
        let bytes = write_aiger_binary(&aig);
        assert!(bytes.starts_with(b"aig "));
        // binary is denser than ASCII on the same circuit
        assert!(bytes.len() < write_aiger(&aig).len());
        let from_binary = read_aiger(&bytes).unwrap();
        let from_ascii = read_aiger(write_aiger(&aig)).unwrap();
        assert_eq!(from_binary.num_pis(), from_ascii.num_pis());
        assert_eq!(from_binary.num_gates(), from_ascii.num_gates());
        assert!(equivalent_by_simulation(&aig, &from_binary));
        assert!(equivalent_by_simulation(&from_ascii, &from_binary));
    }

    #[test]
    fn ascii_aiger_tolerates_whitespace_and_order() {
        // f = (a & b) & !c, ANDs listed out of order, sloppy whitespace
        let text = "aag 5 3 0 1 2\r\n2\n4\n6\n\n10\n10 9 6\n   8 2 4\n";
        let aig = read_aiger(text).unwrap();
        assert_eq!(aig.num_pis(), 3);
        assert_eq!(aig.num_gates(), 2);
        // same circuit in strict order and layout
        let strict = read_aiger("aag 5 3 0 1 2\n2\n4\n6\n10\n8 2 4\n10 9 6\n").unwrap();
        assert!(equivalent_by_simulation(&aig, &strict));
        // several records per line
        let packed = read_aiger("aag 5 3 0 1 2\n2 4 6 10 8 2 4 10 9 6").unwrap();
        assert!(equivalent_by_simulation(&aig, &packed));
    }

    #[test]
    fn aiger_parser_rejects_malformed_input() {
        assert!(read_aiger("").is_err());
        assert!(read_aiger("aag 1 0 1 0 0").is_err()); // latches unsupported
        assert!(read_aiger("aag x 0 0 0 0").is_err());
        assert!(read_aiger("aag 1 2 0 0 0\n2\n4\n").is_err()); // M too small
        assert!(read_aiger("aag 3 1 0 1 2\n2\n6\n4 2 2\n4 2 3\n").is_err()); // duplicate lhs
        assert!(read_aiger("aag 2 1 0 1 1\n2\n4\n4 6 2\n").is_err()); // out-of-range fanin
        assert!(read_aiger("aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n").is_err()); // cyclic
        assert!(read_aiger(b"aig 1 1 1 0 0\n".as_slice()).is_err()); // binary latches
        assert!(read_aiger(b"aig 2 1 0 1 1\n4\n".as_slice()).is_err()); // truncated varints
    }

    #[test]
    fn gbc_roundtrip_is_bit_identical() {
        let aig: Aig = adder(4);
        let bytes = write_gbc(&aig).unwrap();
        let (back, depth) = read_gbc::<Aig>(&bytes).unwrap();
        assert!(equivalent_by_simulation(&aig, &back));
        // writing the loaded network again reproduces the bytes exactly
        assert_eq!(write_gbc(&back).unwrap(), bytes);
        // the free depth view equals a freshly computed one
        let twin = DepthView::new(&back);
        assert_eq!(depth.depth(), twin.depth());
        for node in back.node_ids() {
            assert_eq!(depth.level(node), twin.level(node));
        }
    }

    #[test]
    fn gbc_carries_xag_and_mig_gate_kinds() {
        let mut xag = Xag::new();
        let a = xag.create_pi();
        let b = xag.create_pi();
        let g = xag.create_and(a, b);
        let x = xag.create_xor(g, b);
        xag.create_po(x);
        let bytes = write_gbc(&xag).unwrap();
        let (back, _) = read_gbc::<Xag>(&bytes).unwrap();
        assert!(equivalent_by_simulation(&xag, &back));
        assert_eq!(back.num_gates(), xag.num_gates());

        let mut mig = Mig::new();
        let a = mig.create_pi();
        let b = mig.create_pi();
        let c = mig.create_pi();
        let m = mig.create_maj(a, b, c);
        mig.create_po(!m);
        let bytes = write_gbc(&mig).unwrap();
        let (back, _) = read_gbc::<Mig>(&bytes).unwrap();
        assert!(equivalent_by_simulation(&mig, &back));
        // reading into the wrong representation is refused
        assert!(read_gbc::<Aig>(&bytes).is_err());
    }

    #[test]
    fn gbc_info_summarises_without_decoding() {
        let aig: Aig = adder(8);
        let bytes = write_gbc(&aig).unwrap();
        let info = read_gbc_info(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(info.kind, CircuitKind::Aig);
        assert_eq!(info.num_pis as usize, aig.num_pis());
        assert_eq!(info.num_gates as usize, aig.num_gates());
        assert_eq!(info.num_pos as usize, aig.num_pos());
        assert_eq!(info.num_blocks, 1);
        assert_eq!(info.bytes, bytes.len() as u64);
        assert_eq!(info.max_level, DepthView::new(&aig).depth());
    }

    #[test]
    fn gbc_reader_rejects_corrupt_bytes() {
        let aig: Aig = adder(2);
        let bytes = write_gbc(&aig).unwrap();
        assert!(read_gbc::<Aig>(&bytes[..10]).is_err()); // truncated
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(read_gbc::<Aig>(&bad_magic).is_err());
        let mut bad_kind = bytes.clone();
        bad_kind[4] = 9;
        assert!(read_gbc::<Aig>(&bad_kind).is_err());
        let mut bad_level = bytes.clone();
        bad_level[24 + 8] ^= 1; // block max_level index record
        assert!(read_gbc::<Aig>(&bad_level).is_err());
    }

    #[test]
    fn network_sink_matches_builder_sink() {
        let aig: Aig = adder(4);
        // the same record stream through the bulk path and the robust path
        let mut source = NetworkSource::new(&aig);
        let (bulk, _) = transfer(&mut source, NetworkSink::<Aig>::new()).unwrap();
        let mut source = NetworkSource::new(&aig);
        let robust: Aig = transfer(&mut source, BuilderSink::new()).unwrap();
        assert_eq!(bulk.size(), robust.size());
        assert_eq!(bulk.num_gates(), robust.num_gates());
        assert_eq!(bulk.po_signals(), robust.po_signals());
        for node in bulk.node_ids() {
            assert_eq!(bulk.gate_kind(node), robust.gate_kind(node));
            assert_eq!(bulk.fanins(node), robust.fanins(node));
        }
        assert!(equivalent_by_simulation(&aig, &bulk));
    }

    #[test]
    fn blif_and_verilog_writers_emit_all_gates() {
        let aig: Aig = adder(2);
        let blif = write_blif(&aig, "adder2");
        assert!(blif.contains(".model adder2"));
        assert_eq!(
            blif.matches(".names").count() - 1,
            aig.num_gates() + aig.num_pos()
        );
        let verilog = write_verilog(&aig, "adder2");
        assert!(verilog.contains("module adder2"));
        assert_eq!(verilog.matches("wire n").count(), aig.num_gates() + 1);

        // LUT networks are emitted as covers
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(4));
        let blif_lut = write_blif(&klut, "adder2_lut");
        assert!(blif_lut.contains(".names"));
        let verilog_lut = write_verilog(&klut, "adder2_lut");
        assert!(verilog_lut.contains("endmodule"));
    }
}
