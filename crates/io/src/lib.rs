//! # glsx-io
//!
//! Interchange formats for the logic networks of this workspace:
//!
//! * ASCII AIGER ([`write_aiger`], [`read_aiger`]) for And-inverter graphs
//!   (the format in which the EPFL benchmark suite is distributed),
//! * BLIF ([`write_blif`]) for any network (gates are emitted as
//!   truth-table covers), the usual hand-off format towards technology
//!   mapping and academic place-and-route tools,
//! * structural Verilog ([`write_verilog`]) for quick inspection and
//!   downstream synthesis tools.
//!
//! # Example
//!
//! ```
//! use glsx_io::{read_aiger, write_aiger};
//! use glsx_network::{Aig, GateBuilder, Network};
//! use glsx_network::simulation::equivalent_by_simulation;
//!
//! let mut aig = Aig::new();
//! let a = aig.create_pi();
//! let b = aig.create_pi();
//! let f = aig.create_and(a, !b);
//! aig.create_po(!f);
//! let text = write_aiger(&aig);
//! let back = read_aiger(&text)?;
//! assert!(equivalent_by_simulation(&aig, &back));
//! # Ok::<(), glsx_io::ParseAigerError>(())
//! ```

use glsx_network::{Aig, GateBuilder, GateKind, Network, NodeId, Signal};
use glsx_truth::isop;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error returned when parsing an AIGER file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    message: String,
}

impl ParseAigerError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER input: {}", self.message)
    }
}

impl Error for ParseAigerError {}

/// Serialises an AIG in the ASCII AIGER format (`aag` header).
///
/// Node indices are re-numbered densely: inputs first, then gates in
/// topological order, matching the format's requirements.
pub fn write_aiger(aig: &Aig) -> String {
    // dense literal assignment
    let mut literal: HashMap<NodeId, u32> = HashMap::new();
    literal.insert(0, 0);
    let mut next_index = 1u32;
    for pi in aig.pi_nodes() {
        literal.insert(pi, 2 * next_index);
        next_index += 1;
    }
    let gates = aig.gate_nodes();
    for &gate in &gates {
        literal.insert(gate, 2 * next_index);
        next_index += 1;
    }
    let lit_of = |literal: &HashMap<NodeId, u32>, s: Signal| -> u32 {
        literal[&s.node()] + s.is_complemented() as u32
    };
    let max_index = next_index - 1;
    let mut out = format!(
        "aag {} {} 0 {} {}\n",
        max_index,
        aig.num_pis(),
        aig.num_pos(),
        gates.len()
    );
    for pi in aig.pi_nodes() {
        out.push_str(&format!("{}\n", literal[&pi]));
    }
    for po in aig.po_signals() {
        out.push_str(&format!("{}\n", lit_of(&literal, po)));
    }
    for &gate in &gates {
        let fanins = aig.fanins(gate);
        out.push_str(&format!(
            "{} {} {}\n",
            literal[&gate],
            lit_of(&literal, fanins[0]),
            lit_of(&literal, fanins[1])
        ));
    }
    out
}

/// Parses an ASCII AIGER (`aag`) file into an [`Aig`].
///
/// Latches are not supported (the library handles combinational logic
/// only); symbol and comment sections are ignored.
///
/// # Errors
///
/// Returns an error on malformed headers, out-of-range literals or latch
/// declarations.
pub fn read_aiger(text: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseAigerError::new("empty input"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 || fields[0] != "aag" {
        return Err(ParseAigerError::new("expected an `aag` header"));
    }
    let parse = |s: &str| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(format!("invalid number `{s}`")))
    };
    let max_index = parse(fields[1])?;
    let num_inputs = parse(fields[2])?;
    let num_latches = parse(fields[3])?;
    let num_outputs = parse(fields[4])?;
    let num_ands = parse(fields[5])?;
    if num_latches != 0 {
        return Err(ParseAigerError::new("latches are not supported"));
    }

    let mut aig = Aig::new();
    let mut signals: Vec<Option<Signal>> = vec![None; max_index + 1];
    signals[0] = Some(aig.get_constant(false));
    let mut input_literals = Vec::with_capacity(num_inputs);
    for _ in 0..num_inputs {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing input line"))?;
        let lit = parse(line.trim())?;
        if lit % 2 != 0 || lit / 2 > max_index {
            return Err(ParseAigerError::new(format!("invalid input literal {lit}")));
        }
        signals[lit / 2] = Some(aig.create_pi());
        input_literals.push(lit);
    }
    let mut output_literals = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing output line"))?;
        output_literals.push(parse(line.trim())?);
    }
    let mut and_definitions = Vec::with_capacity(num_ands);
    for _ in 0..num_ands {
        let line = lines
            .next()
            .ok_or_else(|| ParseAigerError::new("missing AND line"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(ParseAigerError::new(format!("malformed AND line `{line}`")));
        }
        and_definitions.push((parse(parts[0])?, parse(parts[1])?, parse(parts[2])?));
    }
    // ANDs may be listed in any topological order in which fanins precede
    // definitions; resolve iteratively
    let mut remaining = and_definitions;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&(lhs, rhs0, rhs1)| {
            let resolve = |lit: usize, signals: &[Option<Signal>]| -> Option<Signal> {
                signals
                    .get(lit / 2)
                    .copied()
                    .flatten()
                    .map(|s| s.complement_if(lit % 2 == 1))
            };
            match (resolve(rhs0, &signals), resolve(rhs1, &signals)) {
                (Some(a), Some(b)) => {
                    let gate = aig.create_and(a, b);
                    signals[lhs / 2] = Some(gate.complement_if(lhs % 2 == 1));
                    false
                }
                _ => true,
            }
        });
        if remaining.len() == before {
            return Err(ParseAigerError::new("cyclic or undefined AND definitions"));
        }
    }
    for lit in output_literals {
        let signal = signals
            .get(lit / 2)
            .copied()
            .flatten()
            .ok_or_else(|| ParseAigerError::new(format!("undefined output literal {lit}")))?;
        aig.create_po(signal.complement_if(lit % 2 == 1));
    }
    Ok(aig)
}

/// Serialises any network in BLIF: every gate becomes a `.names` block
/// whose cover is derived from the gate's local function.
pub fn write_blif<N: Network>(ntk: &N, model_name: &str) -> String {
    let mut out = format!(".model {model_name}\n");
    let name = |n: NodeId| format!("n{n}");
    out.push_str(".inputs");
    for pi in ntk.pi_nodes() {
        out.push_str(&format!(" {}", name(pi)));
    }
    out.push('\n');
    out.push_str(".outputs");
    for i in 0..ntk.num_pos() {
        out.push_str(&format!(" po{i}"));
    }
    out.push('\n');
    // constant zero driver (only if referenced)
    out.push_str(&format!(".names {}\n", name(0)));
    for node in ntk.gate_nodes() {
        let fanins = ntk.fanins(node);
        out.push_str(".names");
        for f in &fanins {
            out.push_str(&format!(" {}", name(f.node())));
        }
        out.push_str(&format!(" {}\n", name(node)));
        // local function with edge complementations folded in
        let mut function = ntk.node_function(node);
        for (i, f) in fanins.iter().enumerate() {
            if f.is_complemented() {
                function = function.flip(i);
            }
        }
        for cube in isop(&function).cubes() {
            let mut row = String::new();
            for i in 0..fanins.len() {
                row.push(if !cube.has_literal(i) {
                    '-'
                } else if cube.polarity(i) {
                    '1'
                } else {
                    '0'
                });
            }
            out.push_str(&format!("{row} 1\n"));
        }
    }
    for (i, po) in ntk.po_signals().iter().enumerate() {
        out.push_str(&format!(".names {} po{i}\n", name(po.node())));
        out.push_str(if po.is_complemented() {
            "0 1\n"
        } else {
            "1 1\n"
        });
    }
    out.push_str(".end\n");
    out
}

/// Serialises any network as structural Verilog using `assign` statements.
pub fn write_verilog<N: Network>(ntk: &N, module_name: &str) -> String {
    let name = |n: NodeId| format!("n{n}");
    let expr = |s: Signal| {
        if s.is_complemented() {
            format!("~{}", name(s.node()))
        } else {
            name(s.node())
        }
    };
    let mut out = format!("module {module_name}(");
    let ports: Vec<String> = ntk
        .pi_nodes()
        .iter()
        .map(|&pi| name(pi))
        .chain((0..ntk.num_pos()).map(|i| format!("po{i}")))
        .collect();
    out.push_str(&ports.join(", "));
    out.push_str(");\n");
    for pi in ntk.pi_nodes() {
        out.push_str(&format!("  input {};\n", name(pi)));
    }
    for i in 0..ntk.num_pos() {
        out.push_str(&format!("  output po{i};\n"));
    }
    out.push_str(&format!("  wire {} = 1'b0;\n", name(0)));
    for node in ntk.gate_nodes() {
        let fanins = ntk.fanins(node);
        let rhs = match ntk.gate_kind(node) {
            GateKind::And => format!("{} & {}", expr(fanins[0]), expr(fanins[1])),
            GateKind::Xor => format!("{} ^ {}", expr(fanins[0]), expr(fanins[1])),
            GateKind::Xor3 => format!(
                "{} ^ {} ^ {}",
                expr(fanins[0]),
                expr(fanins[1]),
                expr(fanins[2])
            ),
            GateKind::Maj => {
                let (a, b, c) = (expr(fanins[0]), expr(fanins[1]), expr(fanins[2]));
                format!("({a} & {b}) | ({a} & {c}) | ({b} & {c})")
            }
            GateKind::Lut | GateKind::Constant | GateKind::Input => {
                // LUTs are expressed as a sum of products of their cover
                let mut function = ntk.node_function(node);
                for (i, f) in fanins.iter().enumerate() {
                    if f.is_complemented() {
                        function = function.flip(i);
                    }
                }
                let cubes = isop(&function);
                if cubes.is_empty() {
                    "1'b0".to_string()
                } else {
                    cubes
                        .cubes()
                        .iter()
                        .map(|cube| {
                            let literals: Vec<String> = (0..fanins.len())
                                .filter(|&i| cube.has_literal(i))
                                .map(|i| {
                                    if cube.polarity(i) {
                                        name(fanins[i].node())
                                    } else {
                                        format!("~{}", name(fanins[i].node()))
                                    }
                                })
                                .collect();
                            if literals.is_empty() {
                                "1'b1".to_string()
                            } else {
                                format!("({})", literals.join(" & "))
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" | ")
                }
            }
        };
        out.push_str(&format!("  wire {} = {};\n", name(node), rhs));
    }
    for (i, po) in ntk.po_signals().iter().enumerate() {
        out.push_str(&format!("  assign po{i} = {};\n", expr(*po)));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsx_benchmarks::arithmetic::adder;
    use glsx_core::lut_mapping::{lut_map, LutMapParams};
    use glsx_network::simulation::equivalent_by_simulation;

    #[test]
    fn aiger_roundtrip_preserves_function() {
        let aig: Aig = adder(4);
        let text = write_aiger(&aig);
        assert!(text.starts_with("aag "));
        let back = read_aiger(&text).unwrap();
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert!(equivalent_by_simulation(&aig, &back));
    }

    #[test]
    fn aiger_parser_rejects_malformed_input() {
        assert!(read_aiger("").is_err());
        assert!(read_aiger("aig 1 1 0 1 0").is_err());
        assert!(read_aiger("aag 1 0 1 0 0").is_err()); // latches unsupported
        assert!(read_aiger("aag x 0 0 0 0").is_err());
    }

    #[test]
    fn blif_and_verilog_writers_emit_all_gates() {
        let aig: Aig = adder(2);
        let blif = write_blif(&aig, "adder2");
        assert!(blif.contains(".model adder2"));
        assert_eq!(
            blif.matches(".names").count() - 1,
            aig.num_gates() + aig.num_pos()
        );
        let verilog = write_verilog(&aig, "adder2");
        assert!(verilog.contains("module adder2"));
        assert_eq!(verilog.matches("wire n").count(), aig.num_gates() + 1);

        // LUT networks are emitted as covers
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(4));
        let blif_lut = write_blif(&klut, "adder2_lut");
        assert!(blif_lut.contains(".names"));
        let verilog_lut = write_verilog(&klut, "adder2_lut");
        assert!(verilog_lut.contains("endmodule"));
    }
}
