//! The streaming record layer: every circuit format and every network
//! representation meets in one producer/consumer trait pair, so any
//! source (a file reader, a generator, an existing network) can feed any
//! sink (a file writer, the strash-free bulk loader, the robust
//! [`GateBuilder`] path) without an intermediate in-memory copy.
//!
//! # Stream id space
//!
//! Records name nodes in a dense *stream id* space: id `0` is the
//! constant, ids `1..=num_pis` are the primary inputs in declaration
//! order, and gates take consecutive ids in record order.  Fanins are
//! [`Signal`]s over stream ids (complemented-edge literals), and every
//! gate's fanins must precede it — streams are topologically sorted by
//! construction.
//!
//! # Sinks
//!
//! * [`NetworkSink`] — the fast path: feeds
//!   [`NetworkBuilder`](glsx_network::NetworkBuilder), which appends
//!   records without structural-hash probes or fanout churn and levelises
//!   on ingest, so the finished network arrives topologically sorted with
//!   a free [`DepthView`].  Requires normalised, duplicate-free streams
//!   (see [`glsx_network::bulk`]); every writer in this crate emits such
//!   streams.
//! * [`BuilderSink`] — the robust path: replays records through
//!   [`GateBuilder::create_gate`], which re-normalises, re-hashes and
//!   constant-folds every record.  Use it for untrusted input
//!   (the AIGER readers do).
//!
//! [`NetworkSource`] streams an existing network back out (dense
//! renumbering, gates in topological order), and [`transfer`] pumps any
//! source into any sink.

use glsx_network::views::DepthView;
use glsx_network::{
    BulkError, BulkTarget, CircuitKind, FaninArray, GateBuilder, GateKind, Network, NetworkBuilder,
    NodeId, Signal,
};
use std::error::Error;
use std::fmt;

/// Error type shared by all streaming circuit I/O in this crate.
#[derive(Debug)]
pub enum IoError {
    /// An underlying read or write failed.
    Io(std::io::Error),
    /// The byte stream or record stream violates the format.
    Format(String),
    /// The record stream violates the bulk-load contract.
    Bulk(BulkError),
}

impl IoError {
    pub(crate) fn format(message: impl Into<String>) -> Self {
        IoError::Format(message.into())
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(m) => write!(f, "malformed circuit stream: {m}"),
            IoError::Bulk(e) => write!(f, "invalid record stream: {e}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
            IoError::Bulk(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<BulkError> for IoError {
    fn from(e: BulkError) -> Self {
        IoError::Bulk(e)
    }
}

/// Header announcing a record stream.
///
/// `num_pis` is exact (sinks create that many inputs up front);
/// `num_gates` and `num_pos` are capacity hints — sources should make
/// them exact when they can, and file writers patch the true counts into
/// their headers at finish time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CircuitHeader {
    /// Target representation of the stream's gate records.
    pub kind: CircuitKind,
    /// Exact number of primary inputs.
    pub num_pis: u32,
    /// Expected number of gate records (capacity hint).
    pub num_gates: u32,
    /// Expected number of output records (capacity hint).
    pub num_pos: u32,
}

/// One record of a circuit stream (see the
/// [module docs](self) for the stream id space).
#[derive(Clone, Debug)]
pub enum Record {
    /// A gate over already-defined fanins; defines the next dense id.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Fanins as stream-id signals.
        fanins: FaninArray,
    },
    /// A primary output driven by an already-defined stream signal.
    Output(Signal),
}

/// Consumer side of a record stream.
pub trait CircuitSink {
    /// What the sink yields when the stream completes.
    type Output;

    /// Announces the stream; called exactly once, first.
    ///
    /// # Errors
    ///
    /// Implementations fail when the header is unacceptable (wrong
    /// representation, unwritable destination…).
    fn begin(&mut self, header: &CircuitHeader) -> Result<(), IoError>;

    /// Consumes one gate record.
    ///
    /// # Errors
    ///
    /// Implementations fail on contract violations or write errors.
    fn gate(&mut self, kind: GateKind, fanins: &[Signal]) -> Result<(), IoError>;

    /// [`CircuitSink::gate`] taking ownership of the fanin array.
    ///
    /// Producers that already hold a [`FaninArray`] (every [`Record`])
    /// should call this; sinks that store records (the bulk loader, the
    /// format writers) override it to move the array instead of copying a
    /// slice.  The default delegates to [`CircuitSink::gate`].
    ///
    /// # Errors
    ///
    /// Same contract as [`CircuitSink::gate`].
    fn gate_owned(&mut self, kind: GateKind, fanins: FaninArray) -> Result<(), IoError> {
        self.gate(kind, fanins.as_slice())
    }

    /// Consumes one primary-output record.
    ///
    /// # Errors
    ///
    /// Implementations fail on undefined drivers or write errors.
    fn output(&mut self, signal: Signal) -> Result<(), IoError>;

    /// Completes the stream and yields the sink's product.
    ///
    /// # Errors
    ///
    /// Implementations fail on final validation or flush errors.
    fn finish(self) -> Result<Self::Output, IoError>;
}

/// Producer side of a record stream.
pub trait CircuitSource {
    /// The stream's header (available before any records).
    fn header(&self) -> &CircuitHeader;

    /// Produces the next record, or `None` when the stream is complete.
    ///
    /// # Errors
    ///
    /// Fails when the underlying bytes are malformed or unreadable.
    fn next_record(&mut self) -> Result<Option<Record>, IoError>;

    /// Pumps every remaining record into `sink` (without finishing it).
    ///
    /// The default loops over [`CircuitSource::next_record`]; sources with
    /// an internal representation cheaper than the [`Record`] enum (an
    /// in-memory network, say) override it with a direct loop — at a
    /// million gates per file the per-record wrapping is measurable.
    ///
    /// # Errors
    ///
    /// Propagates the first source or sink error.
    fn drain<S: CircuitSink>(&mut self, sink: &mut S) -> Result<(), IoError> {
        while let Some(record) = self.next_record()? {
            match record {
                Record::Gate { kind, fanins } => sink.gate_owned(kind, fanins)?,
                Record::Output(signal) => sink.output(signal)?,
            }
        }
        Ok(())
    }
}

/// Pumps every record of `source` into `sink` and finishes it.
///
/// # Errors
///
/// Propagates the first source or sink error.
pub fn transfer<S: CircuitSink>(
    source: &mut impl CircuitSource,
    mut sink: S,
) -> Result<S::Output, IoError> {
    sink.begin(source.header())?;
    source.drain(&mut sink)?;
    sink.finish()
}

/// Streams an existing network as records: inputs implicitly, then the
/// live gates in topological order under a dense renumbering, then the
/// primary outputs.
pub struct NetworkSource<'a, N: BulkTarget> {
    ntk: &'a N,
    header: CircuitHeader,
    /// Stream id per network node id (dense renumbering).
    stream_id: Vec<u32>,
    gates: Vec<NodeId>,
    cursor: usize,
    po_cursor: usize,
}

impl<'a, N: BulkTarget> NetworkSource<'a, N> {
    /// Prepares the stream (computes the topological gate order and the
    /// dense renumbering).
    pub fn new(ntk: &'a N) -> Self {
        let mut stream_id = vec![u32::MAX; ntk.size()];
        stream_id[0] = 0;
        let mut next = 1u32;
        for pi in ntk.pi_nodes() {
            stream_id[pi as usize] = next;
            next += 1;
        }
        // A network that never substituted or removed a node is already
        // topologically sorted by creation id (a gate can only reference
        // nodes that existed when it was made), so one validating sweep
        // replaces the DFS; any violation falls back to the traversal.
        let gates = Self::creation_order(ntk).unwrap_or_else(|| ntk.gate_nodes());
        for &gate in &gates {
            stream_id[gate as usize] = next;
            next += 1;
        }
        let header = CircuitHeader {
            kind: N::KIND,
            num_pis: ntk.num_pis() as u32,
            num_gates: gates.len() as u32,
            num_pos: ntk.num_pos() as u32,
        };
        Self {
            ntk,
            header,
            stream_id,
            gates,
            cursor: 0,
            po_cursor: 0,
        }
    }

    /// Ascending creation order, validated to be a topological schedule of
    /// all live gates; `None` when any node is dead or any gate references
    /// a later id (possible after substitutions), in which case the caller
    /// runs the DFS instead.
    fn creation_order(ntk: &N) -> Option<Vec<NodeId>> {
        let mut gates = Vec::with_capacity(ntk.num_gates());
        for id in 0..ntk.size() as NodeId {
            if ntk.is_dead(id) {
                return None;
            }
            if !ntk.is_gate(id) {
                continue;
            }
            for index in 0..ntk.fanin_size(id) {
                if ntk.fanin(id, index).node() >= id {
                    return None;
                }
            }
            gates.push(id);
        }
        Some(gates)
    }

    fn map(&self, signal: Signal) -> Signal {
        Signal::new(
            self.stream_id[signal.node() as usize],
            signal.is_complemented(),
        )
    }
}

impl<N: BulkTarget> CircuitSource for NetworkSource<'_, N> {
    fn header(&self) -> &CircuitHeader {
        &self.header
    }

    fn next_record(&mut self) -> Result<Option<Record>, IoError> {
        if self.cursor < self.gates.len() {
            let gate = self.gates[self.cursor];
            self.cursor += 1;
            let mut fanins = FaninArray::new();
            self.ntk.foreach_fanin(gate, |f| fanins.push(self.map(f)));
            return Ok(Some(Record::Gate {
                kind: self.ntk.gate_kind(gate),
                fanins,
            }));
        }
        if self.po_cursor < self.ntk.num_pos() {
            let po = self.ntk.po_at(self.po_cursor);
            self.po_cursor += 1;
            return Ok(Some(Record::Output(self.map(po))));
        }
        Ok(None)
    }

    fn drain<S: CircuitSink>(&mut self, sink: &mut S) -> Result<(), IoError> {
        // direct loop: clone each gate's inline fanin array and remap it in
        // place, skipping the per-record `Option<Record>` wrapping of the
        // generic path
        while self.cursor < self.gates.len() {
            let gate = self.gates[self.cursor];
            self.cursor += 1;
            let mut fanins = self.ntk.fanins_inline(gate);
            for f in fanins.as_mut_slice() {
                *f = self.map(*f);
            }
            sink.gate_owned(self.ntk.gate_kind(gate), fanins)?;
        }
        while self.po_cursor < self.ntk.num_pos() {
            let po = self.ntk.po_at(self.po_cursor);
            self.po_cursor += 1;
            sink.output(self.map(po))?;
        }
        Ok(())
    }
}

/// The fast sink: bulk-loads the stream through
/// [`NetworkBuilder`] — no per-record structural-hash probe, no fanout
/// churn, levels computed on ingest.  Yields the finished network
/// together with its free [`DepthView`].
///
/// The stream must satisfy the bulk-load contract
/// ([`glsx_network::bulk`]): normalised records, no structural
/// duplicates.  For untrusted input use [`BuilderSink`].
pub struct NetworkSink<N: BulkTarget> {
    builder: Option<NetworkBuilder>,
    _marker: std::marker::PhantomData<N>,
}

impl<N: BulkTarget> NetworkSink<N> {
    /// Creates an empty sink; the builder is allocated at [`begin`]
    /// (capacity comes from the header).
    ///
    /// [`begin`]: CircuitSink::begin
    pub fn new() -> Self {
        Self {
            builder: None,
            _marker: std::marker::PhantomData,
        }
    }

    fn builder_mut(&mut self) -> Result<&mut NetworkBuilder, IoError> {
        self.builder
            .as_mut()
            .ok_or_else(|| IoError::format("record before stream header"))
    }
}

impl<N: BulkTarget> Default for NetworkSink<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: BulkTarget> CircuitSink for NetworkSink<N> {
    type Output = (N, DepthView);

    fn begin(&mut self, header: &CircuitHeader) -> Result<(), IoError> {
        if header.kind != N::KIND {
            return Err(IoError::Bulk(BulkError::RepresentationMismatch {
                builder: header.kind,
                target: N::KIND,
            }));
        }
        let mut builder = NetworkBuilder::with_capacity(
            N::KIND,
            header.num_pis as usize,
            header.num_gates as usize,
        );
        for _ in 0..header.num_pis {
            builder.add_pi();
        }
        self.builder = Some(builder);
        Ok(())
    }

    fn gate(&mut self, kind: GateKind, fanins: &[Signal]) -> Result<(), IoError> {
        self.builder_mut()?.add_gate(kind, fanins)?;
        Ok(())
    }

    fn gate_owned(&mut self, kind: GateKind, fanins: FaninArray) -> Result<(), IoError> {
        self.builder_mut()?.add_gate_array(kind, fanins)?;
        Ok(())
    }

    fn output(&mut self, signal: Signal) -> Result<(), IoError> {
        self.builder_mut()?.add_po(signal)?;
        Ok(())
    }

    fn finish(self) -> Result<Self::Output, IoError> {
        let builder = self
            .builder
            .ok_or_else(|| IoError::format("stream finished before its header"))?;
        // the sink declared every input at `begin`, so gates occupy
        // exactly the ids after the inputs — the dense depth-view
        // constructor applies
        let first_gate = 1 + builder.num_pis() as NodeId;
        let (ntk, levels) = builder.finish_with_levels::<N>()?;
        let view = DepthView::from_levels_dense(&ntk, levels, first_gate);
        Ok((ntk, view))
    }
}

/// The robust sink: replays every record through
/// [`GateBuilder::create_gate`], re-normalising, re-hashing and
/// constant-folding as it goes.  Slower than [`NetworkSink`], but accepts
/// de-normalised and duplicate-carrying streams (untrusted files).
///
/// Because gate creation may fold records away (constant propagation,
/// structural hashing), stream ids are remapped through a translation
/// table rather than assumed dense in the result.
pub struct BuilderSink<N: Network + GateBuilder> {
    ntk: N,
    /// Network signal per stream id.
    map: Vec<Signal>,
    started: bool,
}

impl<N: Network + GateBuilder> BuilderSink<N> {
    /// Creates the sink around a fresh network.
    pub fn new() -> Self {
        Self {
            ntk: N::new(),
            map: Vec::new(),
            started: false,
        }
    }

    fn resolve(&self, signal: Signal) -> Result<Signal, IoError> {
        let mapped = self
            .map
            .get(signal.node() as usize)
            .copied()
            .ok_or_else(|| {
                IoError::format(format!(
                    "record references undefined stream id {}",
                    signal.node()
                ))
            })?;
        Ok(mapped.complement_if(signal.is_complemented()))
    }
}

impl<N: Network + GateBuilder> Default for BuilderSink<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Network + GateBuilder> CircuitSink for BuilderSink<N> {
    type Output = N;

    fn begin(&mut self, header: &CircuitHeader) -> Result<(), IoError> {
        self.map
            .reserve(1 + header.num_pis as usize + header.num_gates as usize);
        self.map.push(self.ntk.get_constant(false));
        for _ in 0..header.num_pis {
            let pi = self.ntk.create_pi();
            self.map.push(pi);
        }
        self.started = true;
        Ok(())
    }

    fn gate(&mut self, kind: GateKind, fanins: &[Signal]) -> Result<(), IoError> {
        if !self.started {
            return Err(IoError::format("record before stream header"));
        }
        let mut resolved = FaninArray::new();
        for f in fanins {
            resolved.push(self.resolve(*f)?);
        }
        let signal = self.ntk.create_gate(kind, resolved.as_slice());
        self.map.push(signal);
        Ok(())
    }

    fn output(&mut self, signal: Signal) -> Result<(), IoError> {
        let resolved = self.resolve(signal)?;
        self.ntk.create_po(resolved);
        Ok(())
    }

    fn finish(self) -> Result<Self::Output, IoError> {
        if !self.started {
            return Err(IoError::format("stream finished before its header"));
        }
        Ok(self.ntk)
    }
}
