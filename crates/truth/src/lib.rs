//! # glsx-truth
//!
//! Bit-parallel truth-table engine used by the generic logic synthesis
//! library.  A [`TruthTable`] stores the complete function table of a
//! Boolean function over a small number of variables (typically up to 16,
//! the peephole window sizes used by logic optimisation) packed into
//! 64-bit words, mirroring the role of the *kitty* library in the EPFL
//! logic synthesis libraries.
//!
//! The crate provides:
//!
//! * construction helpers ([`TruthTable::nth_var`], [`TruthTable::from_hex`],
//!   [`TruthTable::from_binary`], …),
//! * bitwise Boolean operations and predicates,
//! * cofactors, variable swaps/flips and support computation,
//! * NPN canonisation ([`npn_canonize`]),
//! * irredundant sum-of-products computation ([`isop`]) following
//!   Minato–Morreale,
//! * simple two-level [`Cube`]/SOP data structures used by refactoring.
//!
//! # Example
//!
//! ```
//! use glsx_truth::TruthTable;
//!
//! let a = TruthTable::nth_var(3, 0);
//! let b = TruthTable::nth_var(3, 1);
//! let c = TruthTable::nth_var(3, 2);
//! let maj = (&a & &b) | (&b & &c) | (&a & &c);
//! assert_eq!(maj.to_hex(), "e8");
//! ```

mod cube;
mod isop;
mod npn;
mod operations;
mod table;

pub use cube::{Cube, Sop};
pub use isop::{isop, isop_cover_size, isop_with_dont_cares};
pub use npn::{npn_canonize, npn_canonize_exact, npn_canonize_sift, NpnTransform};
pub use table::{ParseTruthTableError, TruthTable};

/// Number of one-bits of a 64-bit word (convenience re-export used across
/// the workspace).
#[inline]
pub fn popcount64(word: u64) -> u32 {
    word.count_ones()
}
