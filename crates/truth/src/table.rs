//! The [`TruthTable`] data structure.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Bit patterns of the first six projection variables within a single
/// 64-bit word.  Variable `i` toggles with period `2^i`.
pub(crate) const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A complete truth table of a Boolean function over `num_vars` variables.
///
/// The table stores `2^num_vars` bits packed into 64-bit words; bit `m` of
/// the table is the function value under the input assignment whose binary
/// encoding is `m` (variable 0 is the least-significant input).
///
/// Truth tables are value types: they implement [`Clone`], [`PartialEq`],
/// [`Hash`] and the bitwise operators `&`, `|`, `^` and `!` (on references
/// and by value).
///
/// # Example
///
/// ```
/// use glsx_truth::TruthTable;
///
/// let x0 = TruthTable::nth_var(2, 0);
/// let x1 = TruthTable::nth_var(2, 1);
/// let and = &x0 & &x1;
/// assert_eq!(and.count_ones(), 1);
/// assert!(and.bit(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    pub(crate) num_vars: usize,
    pub(crate) words: Vec<u64>,
}

/// Error returned when parsing a truth table from a hexadecimal or binary
/// string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTruthTableError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    InvalidCharacter(char),
    InvalidLength(usize),
}

impl fmt::Display for ParseTruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::InvalidCharacter(c) => {
                write!(f, "invalid character `{c}` in truth table literal")
            }
            ParseErrorKind::InvalidLength(len) => {
                write!(f, "truth table literal length {len} is not a power of two")
            }
        }
    }
}

impl Error for ParseTruthTableError {}

impl TruthTable {
    /// Number of 64-bit words needed for a table over `num_vars` variables.
    #[inline]
    pub(crate) fn word_count(num_vars: usize) -> usize {
        if num_vars <= 6 {
            1
        } else {
            1 << (num_vars - 6)
        }
    }

    /// Creates the constant-zero function over `num_vars` variables.
    pub fn zero(num_vars: usize) -> Self {
        Self {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        }
    }

    /// Creates the constant-one function over `num_vars` variables.
    pub fn one(num_vars: usize) -> Self {
        let mut tt = Self::zero(num_vars);
        for w in &mut tt.words {
            *w = u64::MAX;
        }
        tt.mask_off_excess();
        tt
    }

    /// Creates the projection function of variable `var` over `num_vars`
    /// variables (`f(x) = x_var`).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nth_var(num_vars: usize, var: usize) -> Self {
        assert!(
            var < num_vars,
            "variable index {var} out of range for {num_vars} variables"
        );
        let mut tt = Self::zero(num_vars);
        if var < 6 {
            for w in &mut tt.words {
                *w = VAR_MASKS[var];
            }
        } else {
            let period = 1usize << (var - 6);
            for (i, w) in tt.words.iter_mut().enumerate() {
                if (i / period) & 1 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        tt.mask_off_excess();
        tt
    }

    /// Creates a truth table from raw words.  Excess bits beyond
    /// `2^num_vars` are masked off.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        let mut words = words;
        words.resize(Self::word_count(num_vars), 0);
        let mut tt = Self { num_vars, words };
        tt.mask_off_excess();
        tt
    }

    /// Overwrites this table in place with a function over `num_vars`
    /// variables whose bits are given as raw words, reusing the existing
    /// word buffer — the allocation-free counterpart of
    /// [`TruthTable::from_words`] for hot paths that re-fill one table per
    /// candidate.  Excess bits beyond `2^num_vars` are masked off; missing
    /// words read as zero.
    pub fn assign_words(&mut self, num_vars: usize, words: &[u64]) {
        let count = Self::word_count(num_vars);
        self.num_vars = num_vars;
        self.words.clear();
        self.words
            .extend_from_slice(&words[..count.min(words.len())]);
        self.words.resize(count, 0);
        self.mask_off_excess();
    }

    /// Creates a truth table over at most 6 variables from the low
    /// `2^num_vars` bits of `bits`.
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6, "from_bits supports at most 6 variables");
        let mut tt = Self::zero(num_vars);
        tt.words[0] = bits;
        tt.mask_off_excess();
        tt
    }

    /// Parses a truth table from a hexadecimal string (most-significant
    /// nibble first), e.g. `"e8"` for the 3-input majority function.
    ///
    /// # Errors
    ///
    /// Returns an error if the string contains non-hexadecimal characters
    /// or its length is not `max(1, 2^(n-2))` for some `n`.
    pub fn from_hex(num_vars: usize, hex: &str) -> Result<Self, ParseTruthTableError> {
        let expected = if num_vars < 2 {
            1
        } else {
            1usize << (num_vars - 2)
        };
        if hex.len() != expected {
            return Err(ParseTruthTableError {
                kind: ParseErrorKind::InvalidLength(hex.len()),
            });
        }
        let mut tt = Self::zero(num_vars);
        for (i, c) in hex.chars().rev().enumerate() {
            let v = c.to_digit(16).ok_or(ParseTruthTableError {
                kind: ParseErrorKind::InvalidCharacter(c),
            })? as u64;
            let word = (i * 4) / 64;
            let off = (i * 4) % 64;
            tt.words[word] |= v << off;
        }
        tt.mask_off_excess();
        Ok(tt)
    }

    /// Parses a truth table from a binary string (most-significant bit
    /// first), e.g. `"11101000"` for the 3-input majority function.
    ///
    /// # Errors
    ///
    /// Returns an error if the string contains characters other than `0`
    /// and `1` or its length is not `2^num_vars`.
    pub fn from_binary(num_vars: usize, bin: &str) -> Result<Self, ParseTruthTableError> {
        if bin.len() != 1usize << num_vars {
            return Err(ParseTruthTableError {
                kind: ParseErrorKind::InvalidLength(bin.len()),
            });
        }
        let mut tt = Self::zero(num_vars);
        for (i, c) in bin.chars().rev().enumerate() {
            match c {
                '0' => {}
                '1' => tt.words[i / 64] |= 1u64 << (i % 64),
                other => {
                    return Err(ParseTruthTableError {
                        kind: ParseErrorKind::InvalidCharacter(other),
                    })
                }
            }
        }
        Ok(tt)
    }

    /// Returns the number of variables of the function.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of bits (`2^num_vars`) of the table.
    #[inline]
    pub fn num_bits(&self) -> usize {
        1usize << self.num_vars
    }

    /// Returns the backing words of the table.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns mutable access to the backing words.  Excess bits must be
    /// kept zero by the caller; use [`TruthTable::normalize`] afterwards if
    /// unsure.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits beyond `2^num_vars` (useful after manipulating the
    /// raw words).
    pub fn normalize(&mut self) {
        self.mask_off_excess();
    }

    /// Returns the value of bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    #[inline]
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.num_bits());
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the value of bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    #[inline]
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.num_bits());
        if value {
            self.words[index / 64] |= 1u64 << (index % 64);
        } else {
            self.words[index / 64] &= !(1u64 << (index % 64));
        }
    }

    /// Returns the number of one-bits (the size of the on-set).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns the number of zero-bits (the size of the off-set).
    pub fn count_zeros(&self) -> usize {
        self.num_bits() - self.count_ones()
    }

    /// Returns `true` if the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant one.
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.num_vars)
    }

    /// Returns `true` if the function is constant (zero or one).
    pub fn is_const(&self) -> bool {
        self.is_zero() || self.is_one()
    }

    /// Formats the table as a lower-case hexadecimal string,
    /// most-significant nibble first.
    pub fn to_hex(&self) -> String {
        let nibbles = if self.num_vars < 2 {
            1
        } else {
            1usize << (self.num_vars - 2)
        };
        let mut s = String::with_capacity(nibbles);
        for i in (0..nibbles).rev() {
            let word = (i * 4) / 64;
            let off = (i * 4) % 64;
            let v = (self.words[word] >> off) & 0xF;
            let v = if self.num_vars == 0 {
                v & 0x1
            } else if self.num_vars == 1 {
                v & 0x3
            } else {
                v
            };
            s.push(char::from_digit(v as u32, 16).expect("nibble in range"));
        }
        s
    }

    /// Formats the table as a binary string, most-significant bit first.
    pub fn to_binary(&self) -> String {
        let mut s = String::with_capacity(self.num_bits());
        for i in (0..self.num_bits()).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        s
    }

    #[inline]
    pub(crate) fn mask_off_excess(&mut self) {
        if self.num_vars < 6 {
            let bits = 1usize << self.num_vars;
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            self.words[0] &= mask;
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, 0x{})", self.num_vars, self.to_hex())
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl FromStr for TruthTable {
    type Err = ParseTruthTableError;

    /// Parses a hexadecimal truth-table literal; the number of variables is
    /// inferred from the string length (`len = 2^(n-2)`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let len = s.len();
        if !len.is_power_of_two() && len != 1 {
            return Err(ParseTruthTableError {
                kind: ParseErrorKind::InvalidLength(len),
            });
        }
        let num_vars = if len == 1 {
            2
        } else {
            len.trailing_zeros() as usize + 2
        };
        Self::from_hex(num_vars, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        for n in 0..10 {
            let z = TruthTable::zero(n);
            let o = TruthTable::one(n);
            assert!(z.is_zero());
            assert!(o.is_one());
            assert!(z.is_const());
            assert!(o.is_const());
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert_eq!(z.num_vars(), n);
            assert_eq!(z.num_bits(), 1 << n);
        }
    }

    #[test]
    fn nth_var_balanced() {
        for n in 1..10 {
            for v in 0..n {
                let tt = TruthTable::nth_var(n, v);
                assert_eq!(tt.count_ones(), 1 << (n - 1));
                // bit m is set iff bit v of m is set
                for m in 0..tt.num_bits() {
                    assert_eq!(tt.bit(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn nth_var_out_of_range() {
        let _ = TruthTable::nth_var(3, 3);
    }

    #[test]
    fn hex_roundtrip() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        assert_eq!(maj.to_hex(), "e8");
        assert_eq!(maj.count_ones(), 4);
        let big = TruthTable::nth_var(8, 7);
        let hex = big.to_hex();
        let back = TruthTable::from_hex(8, &hex).unwrap();
        assert_eq!(big, back);
    }

    #[test]
    fn binary_roundtrip() {
        let maj = TruthTable::from_binary(3, "11101000").unwrap();
        assert_eq!(maj.to_hex(), "e8");
        assert_eq!(maj.to_binary(), "11101000");
    }

    #[test]
    fn parse_errors() {
        assert!(TruthTable::from_hex(3, "g8").is_err());
        assert!(TruthTable::from_hex(3, "e80").is_err());
        assert!(TruthTable::from_binary(2, "10x1").is_err());
        assert!(TruthTable::from_binary(2, "101").is_err());
    }

    #[test]
    fn from_str_infers_size() {
        let tt: TruthTable = "e8".parse().unwrap();
        assert_eq!(tt.num_vars(), 3);
        let tt: TruthTable = "cafecafe".parse().unwrap();
        assert_eq!(tt.num_vars(), 5);
    }

    #[test]
    fn set_and_get_bits() {
        let mut tt = TruthTable::zero(7);
        tt.set_bit(0, true);
        tt.set_bit(100, true);
        assert!(tt.bit(0));
        assert!(tt.bit(100));
        assert!(!tt.bit(50));
        assert_eq!(tt.count_ones(), 2);
        tt.set_bit(100, false);
        assert_eq!(tt.count_ones(), 1);
    }

    #[test]
    fn small_tables_mask_excess() {
        let one = TruthTable::one(2);
        assert_eq!(one.words()[0], 0xF);
        let one = TruthTable::one(0);
        assert_eq!(one.words()[0], 0x1);
    }
}
