//! Boolean operations, cofactors and variable manipulations on
//! [`TruthTable`]s.

use crate::table::{TruthTable, VAR_MASKS};
use std::ops::{BitAnd, BitOr, BitXor, Not};

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(
                    self.num_vars, rhs.num_vars,
                    "truth tables must have the same number of variables"
                );
                let words = self
                    .words
                    .iter()
                    .zip(rhs.words.iter())
                    .map(|(a, b)| a $op b)
                    .collect();
                let mut tt = TruthTable { num_vars: self.num_vars, words };
                tt.mask_off_excess();
                tt
            }
        }

        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                (&self).$method(&rhs)
            }
        }

        impl $trait<&TruthTable> for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                (&self).$method(rhs)
            }
        }

        impl $trait<TruthTable> for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                self.$method(&rhs)
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let words = self.words.iter().map(|w| !w).collect();
        let mut tt = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        tt.mask_off_excess();
        tt
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        !&self
    }
}

impl TruthTable {
    /// Returns the negative cofactor of the function with respect to
    /// variable `var` (`f` with `x_var = 0`), as a function over the same
    /// variable count (the cofactored variable becomes a don't-care input).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor0(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars);
        let mut result = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            for w in &mut result.words {
                let low = *w & !VAR_MASKS[var];
                *w = low | (low << shift);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = result.words.len();
            for i in 0..n {
                if (i / period) & 1 == 1 {
                    result.words[i] = result.words[i - period];
                }
            }
        }
        result.mask_off_excess();
        result
    }

    /// Returns the positive cofactor of the function with respect to
    /// variable `var` (`f` with `x_var = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor1(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars);
        let mut result = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            for w in &mut result.words {
                let high = *w & VAR_MASKS[var];
                *w = high | (high >> shift);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = result.words.len();
            for i in 0..n {
                if (i / period) & 1 == 0 {
                    result.words[i] = result.words[i + period];
                }
            }
        }
        result.mask_off_excess();
        result
    }

    /// Returns `true` if the function functionally depends on variable
    /// `var` (i.e. the two cofactors differ).
    pub fn has_var(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// Returns the set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.has_var(v)).collect()
    }

    /// Returns the number of variables in the functional support.
    pub fn support_size(&self) -> usize {
        (0..self.num_vars).filter(|&v| self.has_var(v)).count()
    }

    /// Complements (flips) input variable `var`, i.e. returns
    /// `f(x_0, …, ¬x_var, …)`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn flip(&self, var: usize) -> TruthTable {
        assert!(var < self.num_vars);
        let mut result = self.clone();
        if var < 6 {
            let shift = 1usize << var;
            for w in &mut result.words {
                let high = *w & VAR_MASKS[var];
                let low = *w & !VAR_MASKS[var];
                *w = (high >> shift) | (low << shift);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = result.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..period {
                    result.words.swap(i + j, i + j + period);
                }
                i += 2 * period;
            }
        }
        result
    }

    /// Swaps the roles of two adjacent variables `var` and `var + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `var + 1 >= num_vars`.
    pub fn swap_adjacent(&self, var: usize) -> TruthTable {
        assert!(var + 1 < self.num_vars);
        self.swap(var, var + 1)
    }

    /// Swaps the roles of variables `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn swap(&self, a: usize, b: usize) -> TruthTable {
        assert!(a < self.num_vars && b < self.num_vars);
        if a == b {
            return self.clone();
        }
        let mut result = TruthTable::zero(self.num_vars);
        for m in 0..self.num_bits() {
            if self.bit(m) {
                let bit_a = (m >> a) & 1;
                let bit_b = (m >> b) & 1;
                let mut m2 = m & !(1 << a) & !(1 << b);
                m2 |= bit_a << b;
                m2 |= bit_b << a;
                result.set_bit(m2, true);
            }
        }
        result
    }

    /// Permutes the input variables: the result `g` satisfies
    /// `g(x_{perm[0]}, …, x_{perm[n-1]}) = f(x_0, …, x_{n-1})`; concretely,
    /// input `i` of `f` is re-labelled to input `perm[i]` of the result.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    pub fn permute(&self, perm: &[usize]) -> TruthTable {
        assert_eq!(perm.len(), self.num_vars);
        let mut seen = vec![false; self.num_vars];
        for &p in perm {
            assert!(p < self.num_vars && !seen[p], "perm must be a permutation");
            seen[p] = true;
        }
        let mut result = TruthTable::zero(self.num_vars);
        for m in 0..self.num_bits() {
            if self.bit(m) {
                let mut m2 = 0usize;
                for (i, &p) in perm.iter().enumerate() {
                    if (m >> i) & 1 == 1 {
                        m2 |= 1 << p;
                    }
                }
                result.set_bit(m2, true);
            }
        }
        result
    }

    /// Extends the function to a larger variable count; the new variables
    /// are don't-cares.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars < self.num_vars()`.
    pub fn extend_to(&self, num_vars: usize) -> TruthTable {
        assert!(num_vars >= self.num_vars);
        if num_vars == self.num_vars {
            return self.clone();
        }
        let mut result = TruthTable::zero(num_vars);
        let bits = self.num_bits();
        for m in 0..result.num_bits() {
            if self.bit(m % bits) {
                result.set_bit(m, true);
            }
        }
        result
    }

    /// Shrinks the function to a smaller variable count, keeping the
    /// projection onto the first `num_vars` variables.  The function must
    /// not depend on any removed variable.
    ///
    /// # Panics
    ///
    /// Panics if the function depends on a removed variable.
    pub fn shrink_to(&self, num_vars: usize) -> TruthTable {
        assert!(num_vars <= self.num_vars);
        for v in num_vars..self.num_vars {
            assert!(!self.has_var(v), "function depends on removed variable {v}");
        }
        let mut result = TruthTable::zero(num_vars);
        for m in 0..result.num_bits() {
            if self.bit(m) {
                result.set_bit(m, true);
            }
        }
        result
    }

    /// Returns `true` if `self` implies `other` (i.e. `self & !other == 0`).
    pub fn implies(&self, other: &TruthTable) -> bool {
        assert_eq!(self.num_vars, other.num_vars);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the two functions are equal up to output
    /// complementation.
    pub fn equal_up_to_complement(&self, other: &TruthTable) -> bool {
        self == other || *self == !other
    }

    /// Computes the ternary if-then-else `cond ? then_tt : else_tt`.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different variable counts.
    pub fn ite(cond: &TruthTable, then_tt: &TruthTable, else_tt: &TruthTable) -> TruthTable {
        (cond & then_tt) | (&!cond & else_tt)
    }

    /// Computes the majority of three functions.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different variable counts.
    pub fn maj(a: &TruthTable, b: &TruthTable, c: &TruthTable) -> TruthTable {
        (a & b) | (b & c) | (a & c)
    }

    /// Returns `true` if the function is positive unate in `var`
    /// (cofactor0 implies cofactor1).
    pub fn is_positive_unate(&self, var: usize) -> bool {
        self.cofactor0(var).implies(&self.cofactor1(var))
    }

    /// Returns `true` if the function is negative unate in `var`
    /// (cofactor1 implies cofactor0).
    pub fn is_negative_unate(&self, var: usize) -> bool {
        self.cofactor1(var).implies(&self.cofactor0(var))
    }

    /// Returns `true` if the function is binate (not unate) in `var`.
    pub fn is_binate(&self, var: usize) -> bool {
        !self.is_positive_unate(var) && !self.is_negative_unate(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maj3() -> TruthTable {
        TruthTable::from_hex(3, "e8").unwrap()
    }

    #[test]
    fn binary_operations() {
        let a = TruthTable::nth_var(3, 0);
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        assert_eq!(TruthTable::maj(&a, &b, &c), maj3());
        assert_eq!((&a ^ &a), TruthTable::zero(3));
        assert_eq!((&a | &!&a), TruthTable::one(3));
        assert_eq!((&a & &!&a), TruthTable::zero(3));
    }

    #[test]
    fn cofactors_of_majority() {
        let m = maj3();
        // maj(0, b, c) = b & c; maj(1, b, c) = b | c
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        assert_eq!(m.cofactor0(0), &b & &c);
        assert_eq!(m.cofactor1(0), &b | &c);
    }

    #[test]
    fn cofactors_high_vars() {
        let tt = TruthTable::nth_var(8, 7);
        assert!(tt.cofactor0(7).is_zero());
        assert!(tt.cofactor1(7).is_one());
        let other = TruthTable::nth_var(8, 2);
        assert_eq!(other.cofactor0(7), other);
        assert_eq!(other.cofactor1(7), other);
    }

    #[test]
    fn support_detection() {
        let m = maj3();
        assert_eq!(m.support(), vec![0, 1, 2]);
        assert_eq!(m.support_size(), 3);
        let x1 = TruthTable::nth_var(4, 1);
        assert_eq!(x1.support(), vec![1]);
        assert!(TruthTable::zero(5).support().is_empty());
    }

    #[test]
    fn flip_involution() {
        let m = maj3();
        for v in 0..3 {
            assert_eq!(m.flip(v).flip(v), m);
        }
        // Majority is self-dual: flipping all inputs complements it.
        assert_eq!(m.flip(0).flip(1).flip(2), !&m);
    }

    #[test]
    fn flip_high_vars() {
        let tt = TruthTable::nth_var(7, 6);
        assert_eq!(tt.flip(6), !&tt);
        assert_eq!(tt.flip(6).flip(6), tt);
    }

    #[test]
    fn swap_symmetry() {
        let m = maj3();
        // majority is totally symmetric
        assert_eq!(m.swap(0, 1), m);
        assert_eq!(m.swap(0, 2), m);
        let a = TruthTable::nth_var(3, 0);
        assert_eq!(a.swap(0, 2), TruthTable::nth_var(3, 2));
        assert_eq!(a.swap_adjacent(0), TruthTable::nth_var(3, 1));
    }

    #[test]
    fn permute_identity_and_rotation() {
        let m = maj3();
        assert_eq!(m.permute(&[0, 1, 2]), m);
        let a = TruthTable::nth_var(3, 0);
        let rotated = a.permute(&[1, 2, 0]);
        assert_eq!(rotated, TruthTable::nth_var(3, 1));
    }

    #[test]
    fn extend_and_shrink() {
        let m = maj3();
        let ext = m.extend_to(6);
        assert_eq!(ext.support_size(), 3);
        assert_eq!(ext.shrink_to(3), m);
        assert!(!ext.has_var(5));
    }

    #[test]
    #[should_panic]
    fn shrink_depends_on_removed_var() {
        let tt = TruthTable::nth_var(4, 3);
        let _ = tt.shrink_to(3);
    }

    #[test]
    fn unateness() {
        let m = maj3();
        for v in 0..3 {
            assert!(m.is_positive_unate(v));
            assert!(!m.is_negative_unate(v));
            assert!(!m.is_binate(v));
        }
        let xor = TruthTable::nth_var(2, 0) ^ TruthTable::nth_var(2, 1);
        assert!(xor.is_binate(0));
        assert!(xor.is_binate(1));
    }

    #[test]
    fn ite_matches_definition() {
        let a = TruthTable::nth_var(3, 0);
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        let ite = TruthTable::ite(&a, &b, &c);
        for m in 0..8 {
            let expected = if a.bit(m) { b.bit(m) } else { c.bit(m) };
            assert_eq!(ite.bit(m), expected);
        }
    }

    #[test]
    fn implies_relation() {
        let a = TruthTable::nth_var(2, 0);
        let b = TruthTable::nth_var(2, 1);
        let and = &a & &b;
        let or = &a | &b;
        assert!(and.implies(&or));
        assert!(!or.implies(&and));
        assert!(and.implies(&and));
    }
}
