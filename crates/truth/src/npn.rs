//! NPN canonisation (negation–permutation–negation equivalence classes).
//!
//! Rewriting matches cut functions against a database of precomputed
//! optimal structures keyed by the NPN representative of the function.
//! [`npn_canonize`] returns the representative together with the
//! [`NpnTransform`] that maps the original function to it, so that a
//! database structure synthesised for the representative can be
//! instantiated on the original cut leaves.

use crate::TruthTable;

/// The transformation relating a function to its NPN representative.
///
/// The representative `c` satisfies
///
/// ```text
/// c(y_0, …, y_{n-1}) = out ^ f(in_0 ^ y_{perm[0]}, …, in_{n-1} ^ y_{perm[n-1]})
/// ```
///
/// where `in_i` is the input-negation flag of variable `i`, `out` the
/// output-negation flag and `perm` the permutation applied to the inputs
/// (input `i` of `f` is re-labelled to input `perm[i]` of `c`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// Input negation flags (bit `i` set means input `i` of the original
    /// function is complemented).
    pub input_negations: u32,
    /// Output negation flag.
    pub output_negation: bool,
    /// Input permutation: input `i` of the original function becomes input
    /// `perm[i]` of the representative.
    pub perm: Vec<usize>,
}

impl NpnTransform {
    /// The identity transform over `num_vars` variables.
    pub fn identity(num_vars: usize) -> Self {
        Self {
            input_negations: 0,
            output_negation: false,
            perm: (0..num_vars).collect(),
        }
    }

    /// Returns `true` if input `i` is negated by the transform.
    #[inline]
    pub fn input_negated(&self, i: usize) -> bool {
        (self.input_negations >> i) & 1 == 1
    }

    /// Applies the transform to `f`, producing the representative.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        let mut t = f.clone();
        for i in 0..f.num_vars() {
            if self.input_negated(i) {
                t = t.flip(i);
            }
        }
        t = t.permute(&self.perm);
        if self.output_negation {
            t = !t;
        }
        t
    }

    /// Applies the inverse transform, recovering the original function from
    /// the representative.
    pub fn apply_inverse(&self, c: &TruthTable) -> TruthTable {
        let mut t = c.clone();
        if self.output_negation {
            t = !t;
        }
        // invert the permutation
        let mut inv = vec![0usize; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        t = t.permute(&inv);
        for i in 0..t.num_vars() {
            if self.input_negated(i) {
                t = t.flip(i);
            }
        }
        t
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut result);
    result
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Exact NPN canonisation by exhaustive enumeration of all input
/// permutations, input negations and output negation.
///
/// The representative is the lexicographically smallest truth table in the
/// NPN class.  Exhaustive enumeration is practical up to five or six
/// variables, which covers the cut sizes used by rewriting.
///
/// # Panics
///
/// Panics if `tt` has more than 6 variables.
pub fn npn_canonize_exact(tt: &TruthTable) -> (TruthTable, NpnTransform) {
    let n = tt.num_vars();
    assert!(
        n <= 6,
        "exact NPN canonisation supports at most 6 variables"
    );
    let mut best = tt.clone();
    let mut best_transform = NpnTransform::identity(n);
    for perm in permutations(n) {
        for neg in 0u32..(1 << n) {
            for out in [false, true] {
                let transform = NpnTransform {
                    input_negations: neg,
                    output_negation: out,
                    perm: perm.clone(),
                };
                let candidate = transform.apply(tt);
                if candidate < best {
                    best = candidate;
                    best_transform = transform;
                }
            }
        }
    }
    (best, best_transform)
}

/// Heuristic NPN canonisation by greedy sifting: repeatedly applies single
/// input/output negations and adjacent swaps as long as they reduce the
/// table lexicographically.  The result is a class member, not necessarily
/// the class minimum, but is deterministic and consistent for hashing.
pub fn npn_canonize_sift(tt: &TruthTable) -> (TruthTable, NpnTransform) {
    let n = tt.num_vars();
    let mut current = tt.clone();
    let mut transform = NpnTransform::identity(n);
    let mut improved = true;
    while improved {
        improved = false;
        // output negation
        let candidate = !&current;
        if candidate < current {
            current = candidate;
            transform.output_negation = !transform.output_negation;
            improved = true;
        }
        // input negations
        for i in 0..n {
            let candidate = current.flip(i);
            if candidate < current {
                current = candidate;
                // flipping representative input i corresponds to toggling the
                // negation of the original input mapped to i
                for (orig, &p) in transform.perm.iter().enumerate() {
                    if p == i {
                        transform.input_negations ^= 1 << orig;
                    }
                }
                improved = true;
            }
        }
        // adjacent swaps
        for i in 0..n.saturating_sub(1) {
            let candidate = current.swap_adjacent(i);
            if candidate < current {
                current = candidate;
                for p in &mut transform.perm {
                    if *p == i {
                        *p = i + 1;
                    } else if *p == i + 1 {
                        *p = i;
                    }
                }
                improved = true;
            }
        }
    }
    (current, transform)
}

/// NPN canonisation: exact for functions of up to six variables, greedy
/// sifting otherwise.
///
/// Returns the representative and the transform such that
/// `transform.apply(tt)` equals the representative.
///
/// # Example
///
/// ```
/// use glsx_truth::{npn_canonize, TruthTable};
///
/// let f = TruthTable::from_hex(3, "d4")?; // some 3-input function
/// let (canon, transform) = npn_canonize(&f);
/// assert_eq!(transform.apply(&f), canon);
/// assert_eq!(transform.apply_inverse(&canon), f);
/// # Ok::<(), glsx_truth::ParseTruthTableError>(())
/// ```
pub fn npn_canonize(tt: &TruthTable) -> (TruthTable, NpnTransform) {
    if tt.num_vars() <= 6 {
        npn_canonize_exact(tt)
    } else {
        npn_canonize_sift(tt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_functions(num_vars: usize) -> impl Iterator<Item = TruthTable> {
        let bits = 1usize << num_vars;
        (0u64..(1u64 << bits)).map(move |v| TruthTable::from_bits(num_vars, v))
    }

    #[test]
    fn transform_roundtrip() {
        let f = TruthTable::from_hex(4, "cafe").unwrap();
        let (canon, t) = npn_canonize(&f);
        assert_eq!(t.apply(&f), canon);
        assert_eq!(t.apply_inverse(&canon), f);
    }

    #[test]
    fn canon_is_invariant_over_class_members_3vars() {
        // All members of an NPN class must canonise to the same representative.
        let f = TruthTable::from_hex(3, "e8").unwrap();
        let (canon, _) = npn_canonize(&f);
        for neg in 0u32..8 {
            for out in [false, true] {
                let t = NpnTransform {
                    input_negations: neg,
                    output_negation: out,
                    perm: vec![1, 2, 0],
                };
                let member = t.apply(&f);
                let (canon2, t2) = npn_canonize(&member);
                assert_eq!(canon, canon2);
                assert_eq!(t2.apply_inverse(&canon2), member);
            }
        }
    }

    #[test]
    fn two_var_class_count() {
        // There are exactly 4 NPN classes of 2-variable functions.
        let mut classes = std::collections::HashSet::new();
        for f in all_functions(2) {
            let (canon, t) = npn_canonize(&f);
            assert_eq!(t.apply(&f), canon);
            classes.insert(canon);
        }
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn three_var_class_count() {
        // There are 14 NPN classes of 3-variable functions.
        let mut classes = std::collections::HashSet::new();
        for f in all_functions(3) {
            let (canon, _) = npn_canonize(&f);
            classes.insert(canon);
        }
        assert_eq!(classes.len(), 14);
    }

    #[test]
    fn sift_produces_class_member() {
        let f = TruthTable::from_hex(4, "1ee1").unwrap().extend_to(7);
        let (canon, t) = npn_canonize_sift(&f);
        assert_eq!(t.apply(&f), canon);
        assert_eq!(t.apply_inverse(&canon), f);
    }

    #[test]
    fn identity_transform_is_noop() {
        let f = TruthTable::from_hex(4, "8241").unwrap();
        let id = NpnTransform::identity(4);
        assert_eq!(id.apply(&f), f);
        assert_eq!(id.apply_inverse(&f), f);
    }
}
