//! Two-level cube and sum-of-products representations.

use crate::TruthTable;
use std::fmt;

/// A product term (cube) over at most 32 variables.
///
/// A variable `i` appears in the cube iff bit `i` of `mask` is set; its
/// polarity is given by bit `i` of `bits` (1 = positive literal, 0 =
/// negative literal).
///
/// # Example
///
/// ```
/// use glsx_truth::Cube;
///
/// // x0 & !x2
/// let cube = Cube::new(0b001, 0b101);
/// assert_eq!(cube.num_literals(), 2);
/// assert!(cube.has_literal(0));
/// assert!(cube.has_literal(2));
/// assert!(cube.polarity(0));
/// assert!(!cube.polarity(2));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    bits: u32,
    mask: u32,
}

impl Cube {
    /// Creates a cube from polarity bits and a literal mask.  Polarity bits
    /// outside the mask are cleared.
    pub fn new(bits: u32, mask: u32) -> Self {
        Self {
            bits: bits & mask,
            mask,
        }
    }

    /// The empty cube (tautology: the product of zero literals).
    pub fn tautology() -> Self {
        Self { bits: 0, mask: 0 }
    }

    /// Creates a single-literal cube.
    pub fn literal(var: usize, positive: bool) -> Self {
        let mask = 1u32 << var;
        Self {
            bits: if positive { mask } else { 0 },
            mask,
        }
    }

    /// Returns the polarity bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Returns the literal mask.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Returns the number of literals in the cube.
    #[inline]
    pub fn num_literals(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Returns `true` if variable `var` appears in the cube.
    #[inline]
    pub fn has_literal(&self, var: usize) -> bool {
        (self.mask >> var) & 1 == 1
    }

    /// Returns the polarity of variable `var` (only meaningful if the
    /// literal is present).
    #[inline]
    pub fn polarity(&self, var: usize) -> bool {
        (self.bits >> var) & 1 == 1
    }

    /// Adds (or overwrites) a literal.
    pub fn with_literal(mut self, var: usize, positive: bool) -> Self {
        self.mask |= 1 << var;
        if positive {
            self.bits |= 1 << var;
        } else {
            self.bits &= !(1 << var);
        }
        self
    }

    /// Removes a literal if present.
    pub fn without_literal(mut self, var: usize) -> Self {
        self.mask &= !(1 << var);
        self.bits &= !(1 << var);
        self
    }

    /// Evaluates the cube under the input assignment `assignment`, where
    /// bit `i` of `assignment` is the value of variable `i`.
    pub fn evaluate(&self, assignment: u32) -> bool {
        (assignment ^ self.bits) & self.mask == 0
    }

    /// Converts the cube to a truth table over `num_vars` variables.
    pub fn to_truth_table(&self, num_vars: usize) -> TruthTable {
        let mut tt = TruthTable::one(num_vars);
        for v in 0..num_vars.min(32) {
            if self.has_literal(v) {
                let var = TruthTable::nth_var(num_vars, v);
                tt = if self.polarity(v) {
                    &tt & &var
                } else {
                    &tt & &!&var
                };
            }
        }
        tt
    }

    /// Returns `true` if this cube contains (covers at least the minterms
    /// of) `other`.
    pub fn contains(&self, other: &Cube) -> bool {
        // every literal of self must appear in other with the same polarity
        self.mask & other.mask == self.mask && (self.bits ^ other.bits) & self.mask == 0
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "Cube(1)");
        }
        write!(f, "Cube(")?;
        for v in 0..32 {
            if self.has_literal(v) {
                if self.polarity(v) {
                    write!(f, "x{v}")?;
                } else {
                    write!(f, "!x{v}")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for v in 0..32 {
            if self.has_literal(v) {
                if !first {
                    write!(f, "*")?;
                }
                first = false;
                if !self.polarity(v) {
                    write!(f, "!")?;
                }
                write!(f, "x{v}")?;
            }
        }
        Ok(())
    }
}

/// A sum-of-products: a disjunction of [`Cube`]s.
///
/// # Example
///
/// ```
/// use glsx_truth::{Cube, Sop, TruthTable};
///
/// let sop = Sop::from_cubes(3, vec![Cube::literal(0, true), Cube::literal(1, true)]);
/// let tt = sop.to_truth_table();
/// assert_eq!(tt, TruthTable::nth_var(3, 0) | TruthTable::nth_var(3, 1));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Sop {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// Creates an empty (constant-zero) SOP over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            cubes: Vec::new(),
        }
    }

    /// Creates an SOP from a list of cubes.
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        Self { num_vars, cubes }
    }

    /// Returns the number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Returns the number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Returns the total number of literals over all cubes.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Returns `true` if the cover is empty (constant zero).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube to the cover.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Converts the cover into its truth table.
    pub fn to_truth_table(&self) -> TruthTable {
        let mut tt = TruthTable::zero(self.num_vars);
        for cube in &self.cubes {
            tt = &tt | &cube.to_truth_table(self.num_vars);
        }
        tt
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }
}

impl IntoIterator for Sop {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

impl<'a> IntoIterator for &'a Sop {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;
    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl FromIterator<Cube> for Sop {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let num_vars = cubes
            .iter()
            .map(|c| 32 - c.mask().leading_zeros() as usize)
            .max()
            .unwrap_or(0);
        Self { num_vars, cubes }
    }
}

impl Extend<Cube> for Sop {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        self.cubes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_literals() {
        let c = Cube::tautology()
            .with_literal(0, true)
            .with_literal(3, false);
        assert_eq!(c.num_literals(), 2);
        assert!(c.has_literal(0) && c.has_literal(3));
        assert!(!c.has_literal(1));
        assert!(c.polarity(0));
        assert!(!c.polarity(3));
        let c = c.without_literal(0);
        assert_eq!(c.num_literals(), 1);
    }

    #[test]
    fn cube_evaluation() {
        // x0 & !x1
        let c = Cube::new(0b01, 0b11);
        assert!(c.evaluate(0b01));
        assert!(!c.evaluate(0b11));
        assert!(!c.evaluate(0b00));
        assert!(Cube::tautology().evaluate(0b1010));
    }

    #[test]
    fn cube_truth_table() {
        let c = Cube::new(0b01, 0b11);
        let tt = c.to_truth_table(2);
        assert_eq!(tt.count_ones(), 1);
        assert!(tt.bit(1));
        assert_eq!(Cube::tautology().to_truth_table(3), TruthTable::one(3));
    }

    #[test]
    fn cube_containment() {
        let x0 = Cube::literal(0, true);
        let x0x1 = Cube::literal(0, true).with_literal(1, true);
        assert!(x0.contains(&x0x1));
        assert!(!x0x1.contains(&x0));
        assert!(Cube::tautology().contains(&x0));
    }

    #[test]
    fn cube_display() {
        let c = Cube::new(0b01, 0b101);
        assert_eq!(c.to_string(), "x0*!x2");
        assert_eq!(Cube::tautology().to_string(), "1");
    }

    #[test]
    fn sop_roundtrip() {
        let sop = Sop::from_cubes(
            3,
            vec![
                Cube::literal(0, true).with_literal(1, true),
                Cube::literal(2, true),
            ],
        );
        let tt = sop.to_truth_table();
        let expected =
            (TruthTable::nth_var(3, 0) & TruthTable::nth_var(3, 1)) | TruthTable::nth_var(3, 2);
        assert_eq!(tt, expected);
        assert_eq!(sop.num_cubes(), 2);
        assert_eq!(sop.num_literals(), 3);
        assert!(!sop.is_empty());
        assert!(Sop::new(4).is_empty());
        assert!(Sop::new(4).to_truth_table().is_zero());
    }

    #[test]
    fn sop_from_iterator() {
        let sop: Sop = vec![Cube::literal(4, true)].into_iter().collect();
        assert_eq!(sop.num_vars(), 5);
        assert_eq!(sop.num_cubes(), 1);
    }
}
