//! Irredundant sum-of-products computation (Minato–Morreale algorithm).
//!
//! Given a completely-specified function (or an interval `[on, on ∪ dc]`
//! of an incompletely-specified function), [`isop`] computes an
//! irredundant prime cover used by refactoring and by the SOP-balancing
//! and factoring engines.

use crate::{Cube, Sop, TruthTable};

/// Computes an irredundant sum-of-products cover of `tt`.
///
/// The returned [`Sop`] covers exactly the on-set of `tt`.
///
/// # Panics
///
/// Panics if `tt` has more than 32 variables (cubes are limited to 32
/// literals).
///
/// # Example
///
/// ```
/// use glsx_truth::{isop, TruthTable};
///
/// let maj = TruthTable::from_hex(3, "e8")?;
/// let cover = isop(&maj);
/// assert_eq!(cover.num_cubes(), 3);
/// assert_eq!(cover.to_truth_table(), maj);
/// # Ok::<(), glsx_truth::ParseTruthTableError>(())
/// ```
pub fn isop(tt: &TruthTable) -> Sop {
    assert!(tt.num_vars() <= 32, "isop supports at most 32 variables");
    let mut cubes = Vec::new();
    let (_cover, _) = isop_rec(tt, tt, tt.num_vars(), &mut cubes);
    Sop::from_cubes(tt.num_vars(), cubes)
}

/// Computes an irredundant cover of any function `f` with
/// `on ⊆ f ⊆ on ∪ dc` (incompletely-specified ISOP).
///
/// # Panics
///
/// Panics if `on` is not contained in `upper` or the tables have different
/// variable counts.
pub fn isop_with_dont_cares(on: &TruthTable, upper: &TruthTable) -> Sop {
    assert_eq!(on.num_vars(), upper.num_vars());
    assert!(
        on.implies(upper),
        "on-set must be contained in the upper bound"
    );
    let mut cubes = Vec::new();
    let (_cover, _) = isop_rec(on, upper, on.num_vars(), &mut cubes);
    Sop::from_cubes(on.num_vars(), cubes)
}

/// Returns the number of cubes an irredundant cover of `tt` would have
/// without materialising the cover.
pub fn isop_cover_size(tt: &TruthTable) -> usize {
    isop(tt).num_cubes()
}

/// Recursive Minato–Morreale ISOP.
///
/// `lower` is the set of minterms that still must be covered, `upper` the
/// set of minterms that may be covered.  `var_limit` restricts splitting to
/// variables `< var_limit`.  New cubes are appended to `cubes`; the return
/// value is the function realised by those cubes together with the index
/// range of cubes added (so callers can add literals to them).
fn isop_rec(
    lower: &TruthTable,
    upper: &TruthTable,
    var_limit: usize,
    cubes: &mut Vec<Cube>,
) -> (TruthTable, std::ops::Range<usize>) {
    let start = cubes.len();
    if lower.is_zero() {
        return (TruthTable::zero(lower.num_vars()), start..start);
    }
    if upper.is_one() {
        cubes.push(Cube::tautology());
        return (TruthTable::one(lower.num_vars()), start..cubes.len());
    }

    // choose the highest variable below var_limit on which lower or upper depends
    let mut var = None;
    for v in (0..var_limit).rev() {
        if lower.has_var(v) || upper.has_var(v) {
            var = Some(v);
            break;
        }
    }
    let var = match var {
        Some(v) => v,
        None => {
            // lower is non-zero and constant w.r.t. remaining vars => cover it with a tautology
            cubes.push(Cube::tautology());
            return (TruthTable::one(lower.num_vars()), start..cubes.len());
        }
    };

    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // cubes that must contain literal !x_var
    let (g0, range0) = isop_rec(&(&l0 & &!&u1), &u0, var, cubes);
    for cube in &mut cubes[range0.clone()] {
        *cube = cube.with_literal(var, false);
    }
    // cubes that must contain literal x_var
    let (g1, range1) = isop_rec(&(&l1 & &!&u0), &u1, var, cubes);
    for cube in &mut cubes[range1.clone()] {
        *cube = cube.with_literal(var, true);
    }

    // remaining minterms, coverable without a literal on var
    let new_lower = (&l0 & &!&g0) | (&l1 & &!&g1);
    let (g_star, _range2) = isop_rec(&new_lower, &(&u0 & &u1), var, cubes);

    let var_tt = TruthTable::nth_var(lower.num_vars(), var);
    let cover = (&!&var_tt & &g0) | (&var_tt & &g1) | g_star;
    debug_assert!(lower.implies(&cover));
    debug_assert!(cover.implies(upper));
    (cover, start..cubes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isop_constants() {
        assert_eq!(isop(&TruthTable::zero(4)).num_cubes(), 0);
        let one_cover = isop(&TruthTable::one(4));
        assert_eq!(one_cover.num_cubes(), 1);
        assert_eq!(one_cover.cubes()[0], Cube::tautology());
    }

    #[test]
    fn isop_majority() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        let cover = isop(&maj);
        assert_eq!(cover.num_cubes(), 3);
        assert_eq!(cover.to_truth_table(), maj);
    }

    #[test]
    fn isop_xor_needs_all_minterm_cubes() {
        let a = TruthTable::nth_var(3, 0);
        let b = TruthTable::nth_var(3, 1);
        let c = TruthTable::nth_var(3, 2);
        let xor3 = &(&a ^ &b) ^ &c;
        let cover = isop(&xor3);
        assert_eq!(cover.num_cubes(), 4);
        assert_eq!(cover.to_truth_table(), xor3);
    }

    #[test]
    fn isop_covers_random_functions() {
        // deterministic pseudo-random functions
        let mut state = 0x1234_5678_9abc_def0u64;
        for n in 1..=6 {
            for _ in 0..20 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let tt = TruthTable::from_words(n, vec![state]);
                let cover = isop(&tt);
                assert_eq!(cover.to_truth_table(), tt, "n={n} tt={tt}");
            }
        }
    }

    #[test]
    fn isop_large_variable_count() {
        let mut tt = TruthTable::nth_var(8, 7) & TruthTable::nth_var(8, 0);
        tt = tt | (TruthTable::nth_var(8, 3) & !TruthTable::nth_var(8, 5));
        let cover = isop(&tt);
        assert_eq!(cover.to_truth_table(), tt);
        assert!(cover.num_cubes() <= 4);
    }

    #[test]
    fn isop_with_dont_cares_interval() {
        // on = a&b, dc adds a&!b; a is a valid single-literal cover
        let a = TruthTable::nth_var(2, 0);
        let b = TruthTable::nth_var(2, 1);
        let on = &a & &b;
        let upper = a.clone();
        let cover = isop_with_dont_cares(&on, &upper);
        let f = cover.to_truth_table();
        assert!(on.implies(&f));
        assert!(f.implies(&upper));
        assert_eq!(cover.num_cubes(), 1);
    }

    #[test]
    fn cover_size_helper() {
        let maj = TruthTable::from_hex(3, "e8").unwrap();
        assert_eq!(isop_cover_size(&maj), 3);
    }

    #[test]
    #[should_panic]
    fn isop_with_dont_cares_rejects_non_interval() {
        let a = TruthTable::nth_var(2, 0);
        let b = TruthTable::nth_var(2, 1);
        let _ = isop_with_dont_cares(&a, &b);
    }
}
