//! # glsx — scalable generic logic synthesis
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! the generic, representation-independent multi-level logic synthesis
//! methodology of Riener et al., *Scalable Generic Logic Synthesis: One
//! Approach to Rule Them All* (DAC 2019).
//!
//! The individual layers of the stacked architecture live in dedicated
//! crates:
//!
//! * [`truth`] — truth tables, NPN canonisation, ISOP ([`glsx_truth`]).
//! * [`network`] — the network interface API and the AIG/XAG/MIG/XMG/k-LUT
//!   implementations ([`glsx_network`]).
//! * [`sat`] — CDCL SAT solver substrate ([`glsx_sat`]).
//! * [`synth`] — resynthesis engines: exact synthesis, NPN databases, SOP
//!   factoring ([`glsx_synth`]).
//! * [`algorithms`] — the generic algorithms: cuts, rewriting, refactoring,
//!   resubstitution, balancing, LUT mapping ([`glsx_core`]).
//! * [`io`] — AIGER/BLIF/Verilog/BENCH readers and writers ([`glsx_io`]).
//! * [`benchmarks`] — synthetic EPFL-style benchmark generators
//!   ([`glsx_benchmarks`]).
//! * [`flow`] — the `compress2rs`-style generic resynthesis flow and
//!   portfolio runner ([`glsx_flow`]).
//!
//! # Quickstart
//!
//! ```
//! use glsx::network::{Aig, Network, GateBuilder};
//! use glsx::flow::{compress2rs, FlowOptions};
//! use glsx::algorithms::lut_mapping::{lut_map, LutMapParams};
//!
//! // build a tiny network: f = (a & b) ^ c
//! let mut aig = Aig::new();
//! let a = aig.create_pi();
//! let b = aig.create_pi();
//! let c = aig.create_pi();
//! let ab = aig.create_and(a, b);
//! let f = aig.create_xor(ab, c);
//! aig.create_po(f);
//!
//! // optimise it with the generic flow and map into 6-input LUTs
//! let stats = compress2rs(&mut aig, &FlowOptions::default());
//! let mapped = lut_map(&aig, &LutMapParams::with_lut_size(6));
//! assert!(stats.final_size <= stats.initial_size);
//! assert!(mapped.num_gates() >= 1);
//! ```

pub use glsx_benchmarks as benchmarks;
pub use glsx_core as algorithms;
pub use glsx_flow as flow;
pub use glsx_io as io;
pub use glsx_network as network;
pub use glsx_sat as sat;
pub use glsx_synth as synth;
pub use glsx_truth as truth;

/// Convenience prelude importing the most commonly used items.
pub mod prelude {
    pub use crate::algorithms::lut_mapping::{lut_map, LutMapParams};
    pub use crate::flow::{compress2rs, FlowOptions};
    pub use crate::network::{Aig, GateBuilder, Mig, Network, Xag};
    pub use crate::truth::TruthTable;
}
