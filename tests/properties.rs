//! Property-based tests on the core data structures and the key
//! invariants of the optimisation algorithms: every transformation must
//! preserve the Boolean function of the network and maintain structural
//! integrity, for arbitrary randomly generated networks.
//!
//! The harness is a small seeded-PRNG property loop instead of `proptest`
//! (the build environment is fully offline), which keeps every run
//! deterministic and reproducible from the seed printed on failure.

use glsx::algorithms::balancing::{balance, BalanceParams};
use glsx::algorithms::cuts::{simulate_cut, Cut, CutManager, CutParams};
use glsx::algorithms::lut_mapping::{lut_map, LutMapParams};
use glsx::algorithms::refactoring::{refactor, RefactorParams};
use glsx::algorithms::resubstitution::{resubstitute, ResubParams};
use glsx::algorithms::rewriting::{rewrite, RewriteParams};
use glsx::algorithms::sweeping::{check_equivalence, sweep, SweepParams};
use glsx::benchmarks::SplitMix64 as Rng;
use glsx::network::simulation::{equivalent_by_simulation, simulate};
use glsx::network::views::check_network_integrity;
use glsx::network::{Aig, GateBuilder, Mig, Network, NodeId, Signal, Xag};
use glsx::truth::{isop, npn_canonize, TruthTable};

/// Generates a random AIG over `num_pis` inputs with `num_steps` AND steps.
fn arbitrary_network(rng: &mut Rng, num_pis: usize, num_steps: usize) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Signal> = (0..num_pis).map(|_| aig.create_pi()).collect();
    for _ in 0..num_steps {
        let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        signals.push(aig.create_and(x, y));
    }
    for s in signals.iter().rev().take(3) {
        aig.create_po(*s);
    }
    aig
}

/// Random sorted+deduped leaf set of at most `max_len` node ids below
/// `universe`.
fn arbitrary_leaves(rng: &mut Rng, universe: u32, max_len: usize) -> Vec<NodeId> {
    let len = 1 + rng.gen_range(max_len);
    let mut leaves: Vec<NodeId> = (0..len)
        .map(|_| 1 + rng.gen_range(universe as usize) as NodeId)
        .collect();
    leaves.sort_unstable();
    leaves.dedup();
    leaves
}

/// Truth-table invariant: an ISOP cover always reproduces its function.
#[test]
fn isop_covers_are_exact() {
    let mut rng = Rng::seed_from_u64(0x1501);
    for _ in 0..64 {
        let tt = TruthTable::from_words(6, vec![rng.next_u64()]);
        assert_eq!(isop(&tt).to_truth_table(), tt);
    }
}

/// NPN canonisation is a class invariant: transforming the function and
/// canonising again yields the same representative.
#[test]
fn npn_canonisation_is_invariant() {
    let mut rng = Rng::seed_from_u64(0x1502);
    for _ in 0..64 {
        let tt = TruthTable::from_bits(4, rng.next_u64() & 0xffff);
        let (canon, transform) = npn_canonize(&tt);
        assert_eq!(transform.apply(&tt), canon.clone());
        // apply an arbitrary extra NPN transformation and re-canonise
        let neg = rng.gen_range(16) as u32;
        let mut member = tt;
        for v in 0..4 {
            if (neg >> v) & 1 == 1 {
                member = member.flip(v);
            }
        }
        if rng.gen_bool() {
            member = !member;
        }
        let (canon2, _) = npn_canonize(&member);
        assert_eq!(canon, canon2);
    }
}

/// All four optimisations preserve the function of random AIGs and keep
/// the network structurally sound.
#[test]
fn optimisations_preserve_functions() {
    let mut rng = Rng::seed_from_u64(0x1503);
    for case in 0..24 {
        let aig = arbitrary_network(&mut rng, 5, 30);
        let reference = aig.clone();

        let mut rewritten = aig.clone();
        rewrite(&mut rewritten, &RewriteParams::default());
        assert!(check_network_integrity(&rewritten).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &rewritten),
            "case {case}"
        );
        assert!(
            rewritten.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut refactored = aig.clone();
        refactor(&mut refactored, &RefactorParams::default());
        assert!(check_network_integrity(&refactored).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &refactored),
            "case {case}"
        );
        assert!(
            refactored.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut resubstituted = aig.clone();
        resubstitute(&mut resubstituted, &ResubParams::default());
        assert!(
            check_network_integrity(&resubstituted).is_ok(),
            "case {case}"
        );
        assert!(
            equivalent_by_simulation(&reference, &resubstituted),
            "case {case}"
        );
        assert!(
            resubstituted.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut balanced = aig.clone();
        balance(&mut balanced, &BalanceParams::default());
        assert!(check_network_integrity(&balanced).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &balanced),
            "case {case}"
        );
        assert!(balanced.num_gates() <= reference.num_gates(), "case {case}");
    }
}

/// Rewriting preserves the simulated function on random AIGs — the direct
/// end-to-end invariant of the allocation-free cut substrate.
#[test]
fn rewriting_preserves_simulated_function_on_random_aigs() {
    let mut rng = Rng::seed_from_u64(0x1507);
    for case in 0..16 {
        let mut aig = arbitrary_network(&mut rng, 6, 45);
        let reference = simulate(&aig);
        rewrite(&mut aig, &RewriteParams::default());
        assert_eq!(simulate(&aig), reference, "case {case}");
        rewrite(
            &mut aig,
            &RewriteParams {
                allow_zero_gain: true,
                ..RewriteParams::default()
            },
        );
        assert_eq!(simulate(&aig), reference, "case {case} (zero gain)");
    }
}

/// LUT mapping preserves functions and respects the LUT size.
#[test]
fn lut_mapping_preserves_functions() {
    let mut rng = Rng::seed_from_u64(0x1504);
    for case in 0..16 {
        let aig = arbitrary_network(&mut rng, 6, 40);
        let k = 3 + rng.gen_range(4);
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(k));
        assert!(klut.max_fanin_size() <= k, "case {case}");
        assert!(equivalent_by_simulation(&aig, &klut), "case {case}");
    }
}

/// Structural conversion between representations preserves functions.
#[test]
fn conversion_preserves_functions() {
    let mut rng = Rng::seed_from_u64(0x1505);
    for case in 0..16 {
        let aig = arbitrary_network(&mut rng, 5, 25);
        let mig: Mig = glsx::network::convert_network(&aig);
        let xag: Xag = glsx::network::convert_network(&aig);
        assert_eq!(simulate(&aig), simulate(&mig), "case {case}");
        assert_eq!(simulate(&aig), simulate(&xag), "case {case}");
    }
}

/// The fused-truth-table contract: for every enumerated cut of every gate,
/// in every representation, the truth table composed during enumeration is
/// bit-identical to exhaustive simulation of the cut cone
/// (`computeTruthTable`) over the same leaves.  Random networks are built
/// with heavy reuse of earlier signals, so cut sets are deeply reconvergent
/// (leaves of one cut routinely lie inside the cone of another leaf).
#[test]
fn fused_cut_functions_equal_cone_simulation() {
    fn check<N: Network + GateBuilder>(build: impl Fn(&mut Rng) -> N, rng: &mut Rng, cases: u32) {
        for case in 0..cases {
            let ntk = build(rng);
            for &(cut_size, cut_limit) in &[(4usize, 8usize), (6, 6)] {
                let mut mgr = CutManager::new(CutParams {
                    cut_size,
                    cut_limit,
                    compute_truth: true,
                });
                for node in ntk.gate_nodes() {
                    let cuts = mgr.cuts_of(&ntk, node).to_vec();
                    for (i, cut) in cuts.iter().enumerate() {
                        let fused = mgr.cut_function(node, i);
                        let simulated = simulate_cut(&ntk, node, cut.leaves());
                        assert_eq!(
                            fused,
                            simulated,
                            "{} case {case}: node {node}, cut {i} ({:?}), k={cut_size}",
                            N::NAME,
                            cut.leaves()
                        );
                    }
                }
            }
        }
    }
    let mut rng = Rng::seed_from_u64(0x1508);
    check(|rng| arbitrary_network(rng, 6, 40), &mut rng, 8);
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..35 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        8,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(2) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        8,
    );
}

/// Arena compaction is invisible: after invalidation-heavy churn, cut
/// sets, fused functions and enumeration order are identical to a fresh
/// manager's, and the arena stays bounded instead of bump-leaking.
#[test]
fn arena_compaction_preserves_cut_sets_and_determinism() {
    let mut rng = Rng::seed_from_u64(0x1509);
    let aig = arbitrary_network(&mut rng, 6, 60);
    let params = CutParams {
        cut_size: 4,
        cut_limit: 8,
        compute_truth: true,
    };
    let gates = aig.gate_nodes();
    let snapshot = |mgr: &mut CutManager| -> Vec<(Vec<Vec<NodeId>>, Vec<String>)> {
        gates
            .iter()
            .map(|&n| {
                let cuts: Vec<Vec<NodeId>> = mgr
                    .cuts_of(&aig, n)
                    .iter()
                    .map(|c| c.leaves().to_vec())
                    .collect();
                let tts = (0..cuts.len())
                    .map(|i| mgr.cut_function(n, i).to_hex())
                    .collect();
                (cuts, tts)
            })
            .collect()
    };
    let mut fresh = CutManager::new(params);
    let expected = snapshot(&mut fresh);
    let mut churned = CutManager::new(params);
    let _ = snapshot(&mut churned);
    for round in 0..1000 {
        for &n in &gates {
            churned.invalidate(n);
        }
        assert_eq!(snapshot(&mut churned), expected, "round {round}");
    }
    // ~60 gates × ≥1 cut × 1000 rounds would bump-leak tens of thousands
    // of slots without compaction
    assert!(
        churned.arena_len() < 16_384,
        "arena bump-leaked to {} slots",
        churned.arena_len()
    );
}

/// SAT sweeping preserves the function of arbitrary networks in every
/// representation, never grows them, and its output is *proven* equal to
/// the input by an independent miter (`check_equivalence`) on top of the
/// exhaustive-simulation cross-check.  Random networks with heavy signal
/// reuse carry plenty of natural functional redundancy, so sweeps here
/// routinely merge nodes rather than passing through untouched.
#[test]
fn sweeping_preserves_functions_and_proves_its_merges() {
    fn check<N: Network + GateBuilder + Clone>(
        build: impl Fn(&mut Rng) -> N,
        rng: &mut Rng,
        cases: u32,
    ) -> usize {
        let mut merged_total = 0usize;
        for case in 0..cases {
            let ntk = build(rng);
            let reference = ntk.clone();
            let mut swept = ntk.clone();
            let stats = sweep(&mut swept, &SweepParams::default());
            assert!(
                check_network_integrity(&swept).is_ok(),
                "{} case {case}",
                N::NAME
            );
            assert!(
                swept.num_gates() <= reference.num_gates(),
                "{} case {case}: sweep grew the network",
                N::NAME
            );
            assert_eq!(
                stats.gates_before - stats.gates_after,
                reference.num_gates() - swept.num_gates(),
                "{} case {case}: stats disagree with the network",
                N::NAME
            );
            assert!(
                equivalent_by_simulation(&reference, &swept),
                "{} case {case}: sweep changed the simulated function",
                N::NAME
            );
            assert!(
                check_equivalence(&reference, &swept).is_equivalent(),
                "{} case {case}: miter refutes the sweep",
                N::NAME
            );
            merged_total += stats.proven;
        }
        merged_total
    }
    let mut rng = Rng::seed_from_u64(0x150a);
    let aig_merges = check(|rng| arbitrary_network(rng, 5, 40), &mut rng, 12);
    assert!(aig_merges > 0, "random AIGs should contain real redundancy");
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..35 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        8,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(2) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        8,
    );
}

/// Injected redundant cones are provably merged back: sweeping a network
/// with seeded duplicates reaches the gate count the duplicates added to,
/// and the result stays miter-equivalent to the redundant input.
#[test]
fn sweeping_removes_injected_redundancy_on_random_networks() {
    let mut rng = Rng::seed_from_u64(0x150b);
    for case in 0..8 {
        let mut aig = arbitrary_network(&mut rng, 6, 35);
        sweep(&mut aig, &SweepParams::default()); // start from an irredundant base
        let base_gates = aig.num_gates();
        let injected = glsx::benchmarks::inject_redundancy(&mut aig, 4, 0xc0de + case);
        assert_eq!(injected, 4, "case {case}");
        let redundant = aig.clone();
        let stats = sweep(&mut aig, &SweepParams::default());
        // ≥ 1 rather than == injected: identically seeded duplicates can
        // structurally hash together and merge as one pair
        assert!(stats.proven >= 1, "case {case}: {stats:?}");
        assert_eq!(
            aig.num_gates(),
            base_gates,
            "case {case}: duplicates not fully merged back"
        );
        assert!(
            check_equivalence(&redundant, &aig).is_equivalent(),
            "case {case}"
        );
    }
}

/// Cut-merge invariants of the arena-backed cut substrate: results are
/// sorted and duplicate-free, the merge contains both operands (and hence
/// their intersection), and domination is a partial order.
#[test]
fn cut_merge_invariants() {
    let mut rng = Rng::seed_from_u64(0x1506);
    for _ in 0..256 {
        let la = arbitrary_leaves(&mut rng, 96, 6);
        let lb = arbitrary_leaves(&mut rng, 96, 6);
        let a = Cut::from_leaves(&la);
        let b = Cut::from_leaves(&lb);

        // construction canonicalises: sorted ascending, no duplicates
        assert!(a.leaves().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.leaves(), la.as_slice());

        if let Some(merged) = a.merge(&b, 8) {
            // sorted + deduped
            assert!(merged.leaves().windows(2).all(|w| w[0] < w[1]));
            // merge(a, b) ⊇ a and ⊇ b, hence ⊇ a ∩ b
            for l in a.leaves().iter().chain(b.leaves()) {
                assert!(merged.leaves().contains(l));
            }
            // and nothing else: merge(a, b) ⊆ a ∪ b
            for l in merged.leaves() {
                assert!(a.leaves().contains(l) || b.leaves().contains(l));
            }
            // the merged cut is dominated by both operands
            assert!(a.dominates(&merged));
            assert!(b.dominates(&merged));
        } else {
            // merge only fails when the union exceeds the size bound
            let mut union = [a.leaves(), b.leaves()].concat();
            union.sort_unstable();
            union.dedup();
            assert!(union.len() > 8);
        }

        // domination is reflexive and antisymmetric
        assert!(a.dominates(&a));
        if a.dominates(&b) && b.dominates(&a) {
            assert_eq!(a.leaves(), b.leaves());
        }
        // and transitive
        let lc = arbitrary_leaves(&mut rng, 96, 6);
        let c = Cut::from_leaves(&lc);
        if a.dominates(&b) && b.dominates(&c) {
            assert!(a.dominates(&c));
        }

        // semantics: dominates == subset-of-leaves
        let is_subset = a.leaves().iter().all(|l| b.leaves().contains(l));
        assert_eq!(a.dominates(&b), is_subset);
    }
}
