//! Property-based tests on the core data structures and the key
//! invariants of the optimisation algorithms: every transformation must
//! preserve the Boolean function of the network and maintain structural
//! integrity, for arbitrary randomly generated networks.
//!
//! The harness is a small seeded-PRNG property loop instead of `proptest`
//! (the build environment is fully offline), which keeps every run
//! deterministic and reproducible from the seed printed on failure.

use glsx::algorithms::balancing::{balance, BalanceParams};
use glsx::algorithms::cuts::{simulate_cut, Cut, CutFunction, CutManager, CutParams};
use glsx::algorithms::lut_mapping::{lut_map, lut_map_stats, LutMapParams};
use glsx::algorithms::refactoring::{refactor, RefactorParams};
use glsx::algorithms::resubstitution::{resubstitute, ResubParams};
use glsx::algorithms::rewriting::{rewrite, CutMaintenance, RewriteParams};
use glsx::algorithms::sweeping::{check_equivalence, sweep, SweepParams};
use glsx::algorithms::Replacer;
use glsx::benchmarks::SplitMix64 as Rng;
use glsx::network::simulation::{equivalent_by_simulation, simulate};
use glsx::network::views::check_network_integrity;
use glsx::network::{Aig, ChangeLog, GateBuilder, Mig, Network, NodeId, Signal, Xag};
use glsx::truth::{isop, npn_canonize, TruthTable};

/// Generates a random AIG over `num_pis` inputs with `num_steps` AND steps.
fn arbitrary_network(rng: &mut Rng, num_pis: usize, num_steps: usize) -> Aig {
    let mut aig = Aig::new();
    let mut signals: Vec<Signal> = (0..num_pis).map(|_| aig.create_pi()).collect();
    for _ in 0..num_steps {
        let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        signals.push(aig.create_and(x, y));
    }
    for s in signals.iter().rev().take(3) {
        aig.create_po(*s);
    }
    aig
}

/// Generates a random XAG over `num_pis` inputs mixing AND and XOR steps.
fn arbitrary_xag(rng: &mut Rng, num_pis: usize, num_steps: usize) -> Xag {
    let mut xag = Xag::new();
    let mut signals: Vec<Signal> = (0..num_pis).map(|_| xag.create_pi()).collect();
    for _ in 0..num_steps {
        let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        signals.push(if rng.gen_bool() {
            xag.create_and(x, y)
        } else {
            xag.create_xor(x, y)
        });
    }
    for s in signals.iter().rev().take(3) {
        xag.create_po(*s);
    }
    xag
}

/// Generates a random MIG over `num_pis` inputs with `num_steps` MAJ steps.
fn arbitrary_mig(rng: &mut Rng, num_pis: usize, num_steps: usize) -> Mig {
    let mut mig = Mig::new();
    let mut signals: Vec<Signal> = (0..num_pis).map(|_| mig.create_pi()).collect();
    for _ in 0..num_steps {
        let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        let z = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
        signals.push(mig.create_maj(x, y, z));
    }
    for s in signals.iter().rev().take(3) {
        mig.create_po(*s);
    }
    mig
}

/// Random sorted+deduped leaf set of at most `max_len` node ids below
/// `universe`.
fn arbitrary_leaves(rng: &mut Rng, universe: u32, max_len: usize) -> Vec<NodeId> {
    let len = 1 + rng.gen_range(max_len);
    let mut leaves: Vec<NodeId> = (0..len)
        .map(|_| 1 + rng.gen_range(universe as usize) as NodeId)
        .collect();
    leaves.sort_unstable();
    leaves.dedup();
    leaves
}

/// Truth-table invariant: an ISOP cover always reproduces its function.
#[test]
fn isop_covers_are_exact() {
    let mut rng = Rng::seed_from_u64(0x1501);
    for _ in 0..64 {
        let tt = TruthTable::from_words(6, vec![rng.next_u64()]);
        assert_eq!(isop(&tt).to_truth_table(), tt);
    }
}

/// NPN canonisation is a class invariant: transforming the function and
/// canonising again yields the same representative.
#[test]
fn npn_canonisation_is_invariant() {
    let mut rng = Rng::seed_from_u64(0x1502);
    for _ in 0..64 {
        let tt = TruthTable::from_bits(4, rng.next_u64() & 0xffff);
        let (canon, transform) = npn_canonize(&tt);
        assert_eq!(transform.apply(&tt), canon.clone());
        // apply an arbitrary extra NPN transformation and re-canonise
        let neg = rng.gen_range(16) as u32;
        let mut member = tt;
        for v in 0..4 {
            if (neg >> v) & 1 == 1 {
                member = member.flip(v);
            }
        }
        if rng.gen_bool() {
            member = !member;
        }
        let (canon2, _) = npn_canonize(&member);
        assert_eq!(canon, canon2);
    }
}

/// All four optimisations preserve the function of random AIGs and keep
/// the network structurally sound.
#[test]
fn optimisations_preserve_functions() {
    let mut rng = Rng::seed_from_u64(0x1503);
    for case in 0..24 {
        let aig = arbitrary_network(&mut rng, 5, 30);
        let reference = aig.clone();

        let mut rewritten = aig.clone();
        rewrite(&mut rewritten, &RewriteParams::default());
        assert!(check_network_integrity(&rewritten).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &rewritten),
            "case {case}"
        );
        assert!(
            rewritten.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut refactored = aig.clone();
        refactor(&mut refactored, &RefactorParams::default());
        assert!(check_network_integrity(&refactored).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &refactored),
            "case {case}"
        );
        assert!(
            refactored.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut resubstituted = aig.clone();
        resubstitute(&mut resubstituted, &ResubParams::default());
        assert!(
            check_network_integrity(&resubstituted).is_ok(),
            "case {case}"
        );
        assert!(
            equivalent_by_simulation(&reference, &resubstituted),
            "case {case}"
        );
        assert!(
            resubstituted.num_gates() <= reference.num_gates(),
            "case {case}"
        );

        let mut balanced = aig.clone();
        balance(&mut balanced, &BalanceParams::default());
        assert!(check_network_integrity(&balanced).is_ok(), "case {case}");
        assert!(
            equivalent_by_simulation(&reference, &balanced),
            "case {case}"
        );
        assert!(balanced.num_gates() <= reference.num_gates(), "case {case}");
    }
}

/// Rewriting preserves the simulated function on random AIGs — the direct
/// end-to-end invariant of the allocation-free cut substrate.
#[test]
fn rewriting_preserves_simulated_function_on_random_aigs() {
    let mut rng = Rng::seed_from_u64(0x1507);
    for case in 0..16 {
        let mut aig = arbitrary_network(&mut rng, 6, 45);
        let reference = simulate(&aig);
        rewrite(&mut aig, &RewriteParams::default());
        assert_eq!(simulate(&aig), reference, "case {case}");
        rewrite(
            &mut aig,
            &RewriteParams {
                allow_zero_gain: true,
                ..RewriteParams::default()
            },
        );
        assert_eq!(simulate(&aig), reference, "case {case} (zero gain)");
    }
}

/// LUT mapping preserves functions and respects the LUT size.
#[test]
fn lut_mapping_preserves_functions() {
    let mut rng = Rng::seed_from_u64(0x1504);
    for case in 0..16 {
        let aig = arbitrary_network(&mut rng, 6, 40);
        let k = 3 + rng.gen_range(4);
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(k));
        assert!(klut.max_fanin_size() <= k, "case {case}");
        assert!(equivalent_by_simulation(&aig, &klut), "case {case}");
    }
}

/// Structural conversion between representations preserves functions.
#[test]
fn conversion_preserves_functions() {
    let mut rng = Rng::seed_from_u64(0x1505);
    for case in 0..16 {
        let aig = arbitrary_network(&mut rng, 5, 25);
        let mig: Mig = glsx::network::convert_network(&aig);
        let xag: Xag = glsx::network::convert_network(&aig);
        assert_eq!(simulate(&aig), simulate(&mig), "case {case}");
        assert_eq!(simulate(&aig), simulate(&xag), "case {case}");
    }
}

/// The fused-truth-table contract: for every enumerated cut of every gate,
/// in every representation, the truth table composed during enumeration is
/// bit-identical to exhaustive simulation of the cut cone
/// (`computeTruthTable`) over the same leaves.  Random networks are built
/// with heavy reuse of earlier signals, so cut sets are deeply reconvergent
/// (leaves of one cut routinely lie inside the cone of another leaf).
#[test]
fn fused_cut_functions_equal_cone_simulation() {
    fn check<N: Network + GateBuilder>(build: impl Fn(&mut Rng) -> N, rng: &mut Rng, cases: u32) {
        for case in 0..cases {
            let ntk = build(rng);
            for &(cut_size, cut_limit) in &[(4usize, 8usize), (6, 6)] {
                let mut mgr = CutManager::new(CutParams {
                    cut_size,
                    cut_limit,
                    compute_truth: true,
                });
                for node in ntk.gate_nodes() {
                    let cuts = mgr.cuts_of(&ntk, node).to_vec();
                    for (i, cut) in cuts.iter().enumerate() {
                        let fused = mgr.cut_function(node, i).to_truth_table();
                        let simulated = simulate_cut(&ntk, node, cut.leaves());
                        assert_eq!(
                            fused,
                            simulated,
                            "{} case {case}: node {node}, cut {i} ({:?}), k={cut_size}",
                            N::NAME,
                            cut.leaves()
                        );
                    }
                }
            }
        }
    }
    let mut rng = Rng::seed_from_u64(0x1508);
    check(|rng| arbitrary_network(rng, 6, 40), &mut rng, 8);
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..35 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        8,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(2) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        8,
    );
}

/// Arena compaction is invisible: after invalidation-heavy churn, cut
/// sets, fused functions and enumeration order are identical to a fresh
/// manager's, and the arena stays bounded instead of bump-leaking.
#[test]
fn arena_compaction_preserves_cut_sets_and_determinism() {
    let mut rng = Rng::seed_from_u64(0x1509);
    let aig = arbitrary_network(&mut rng, 6, 60);
    let params = CutParams {
        cut_size: 4,
        cut_limit: 8,
        compute_truth: true,
    };
    let gates = aig.gate_nodes();
    let snapshot = |mgr: &mut CutManager| -> Vec<(Vec<Vec<NodeId>>, Vec<String>)> {
        gates
            .iter()
            .map(|&n| {
                let cuts: Vec<Vec<NodeId>> = mgr
                    .cuts_of(&aig, n)
                    .iter()
                    .map(|c| c.leaves().to_vec())
                    .collect();
                let tts = (0..cuts.len())
                    .map(|i| mgr.cut_function(n, i).to_truth_table().to_hex())
                    .collect();
                (cuts, tts)
            })
            .collect()
    };
    let mut fresh = CutManager::new(params);
    let expected = snapshot(&mut fresh);
    let mut churned = CutManager::new(params);
    let _ = snapshot(&mut churned);
    for round in 0..1000 {
        for &n in &gates {
            churned.invalidate(n);
        }
        assert_eq!(snapshot(&mut churned), expected, "round {round}");
    }
    // ~60 gates × ≥1 cut × 1000 rounds would bump-leak tens of thousands
    // of slots without compaction
    assert!(
        churned.arena_len() < 16_384,
        "arena bump-leaked to {} slots",
        churned.arena_len()
    );
}

/// SAT sweeping preserves the function of arbitrary networks in every
/// representation, never grows them, and its output is *proven* equal to
/// the input by an independent miter (`check_equivalence`) on top of the
/// exhaustive-simulation cross-check.  Random networks with heavy signal
/// reuse carry plenty of natural functional redundancy, so sweeps here
/// routinely merge nodes rather than passing through untouched.
#[test]
fn sweeping_preserves_functions_and_proves_its_merges() {
    fn check<N: Network + GateBuilder + Clone>(
        build: impl Fn(&mut Rng) -> N,
        rng: &mut Rng,
        cases: u32,
    ) -> usize {
        let mut merged_total = 0usize;
        for case in 0..cases {
            let ntk = build(rng);
            let reference = ntk.clone();
            let mut swept = ntk.clone();
            let stats = sweep(&mut swept, &SweepParams::default());
            assert!(
                check_network_integrity(&swept).is_ok(),
                "{} case {case}",
                N::NAME
            );
            assert!(
                swept.num_gates() <= reference.num_gates(),
                "{} case {case}: sweep grew the network",
                N::NAME
            );
            assert_eq!(
                stats.gates_before - stats.gates_after,
                reference.num_gates() - swept.num_gates(),
                "{} case {case}: stats disagree with the network",
                N::NAME
            );
            assert!(
                equivalent_by_simulation(&reference, &swept),
                "{} case {case}: sweep changed the simulated function",
                N::NAME
            );
            assert!(
                check_equivalence(&reference, &swept).is_equivalent(),
                "{} case {case}: miter refutes the sweep",
                N::NAME
            );
            merged_total += stats.proven;
        }
        merged_total
    }
    let mut rng = Rng::seed_from_u64(0x150a);
    let aig_merges = check(|rng| arbitrary_network(rng, 5, 40), &mut rng, 12);
    assert!(aig_merges > 0, "random AIGs should contain real redundancy");
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..35 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        8,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(2) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        8,
    );
}

/// Injected redundant cones are provably merged back: sweeping a network
/// with seeded duplicates reaches the gate count the duplicates added to,
/// and the result stays miter-equivalent to the redundant input.
#[test]
fn sweeping_removes_injected_redundancy_on_random_networks() {
    let mut rng = Rng::seed_from_u64(0x150b);
    for case in 0..8 {
        let mut aig = arbitrary_network(&mut rng, 6, 35);
        sweep(&mut aig, &SweepParams::default()); // start from an irredundant base
        let base_gates = aig.num_gates();
        let injected = glsx::benchmarks::inject_redundancy(&mut aig, 4, 0xc0de + case);
        assert_eq!(injected, 4, "case {case}");
        let redundant = aig.clone();
        let stats = sweep(&mut aig, &SweepParams::default());
        // ≥ 1 rather than == injected: identically seeded duplicates can
        // structurally hash together and merge as one pair
        assert!(stats.proven >= 1, "case {case}: {stats:?}");
        assert_eq!(
            aig.num_gates(),
            base_gates,
            "case {case}: duplicates not fully merged back"
        );
        assert!(
            check_equivalence(&redundant, &aig).is_equivalent(),
            "case {case}"
        );
    }
}

/// Snapshot of every live node's cut sets, their order and their fused
/// functions — the full observable state of a cut manager.
fn cut_snapshot<N: Network>(
    ntk: &N,
    mgr: &mut CutManager,
) -> Vec<(NodeId, Vec<Vec<NodeId>>, Vec<CutFunction>)> {
    ntk.node_ids()
        .iter()
        .map(|&n| {
            let cuts: Vec<Vec<NodeId>> = mgr
                .cuts_of(ntk, n)
                .iter()
                .map(|c| c.leaves().to_vec())
                .collect();
            let tts = (0..cuts.len()).map(|i| *mgr.cut_function(n, i)).collect();
            (n, cuts, tts)
        })
        .collect()
}

/// The incremental-refresh contract of the change-event layer: after
/// arbitrary randomized substitute/merge/delete sequences, a cut manager
/// refreshed from the recorded [`ChangeLog`] is bit-identical — same cut
/// sets, same order, same fused functions — to a manager built from
/// scratch on the mutated network, in every representation.
#[test]
fn refresh_from_change_log_equals_from_scratch_enumeration() {
    fn check<N: Network + GateBuilder>(build: impl Fn(&mut Rng) -> N, rng: &mut Rng, cases: u32) {
        let params = CutParams {
            cut_size: 4,
            cut_limit: 8,
            compute_truth: true,
        };
        for case in 0..cases {
            let mut ntk = build(rng);
            let mut mgr = CutManager::new(params);
            // memoise everything so stale state would be visible
            let _ = cut_snapshot(&ntk, &mut mgr);
            let mut log = ChangeLog::new();
            let mut replacer = Replacer::new();
            ntk.set_change_tracking(true);
            for step in 0..12 {
                // one randomized structural mutation per step
                let gates = ntk.gate_nodes();
                if gates.is_empty() {
                    break;
                }
                let target = gates[rng.gen_range(gates.len())];
                match rng.gen_range(4) {
                    // replace a gate by one of its own fanins (acyclic by
                    // construction)
                    0 => {
                        let f = ntk.fanin(target, rng.gen_range(ntk.fanin_size(target)));
                        ntk.substitute_node(target, f.complement_if(rng.gen_bool()));
                    }
                    // collapse a gate to a constant
                    1 => {
                        let c = ntk.get_constant(rng.gen_bool());
                        ntk.substitute_node(target, c);
                    }
                    // merge two gates (the replacer's cone walk refuses
                    // cyclic merges, so any pair is safe to try)
                    2 => {
                        let other = gates[rng.gen_range(gates.len())];
                        let _ = replacer.merge_equivalent(
                            &mut ntk,
                            target,
                            Signal::new(other, rng.gen_bool()),
                        );
                    }
                    // create a gate, then delete it again (exercises the
                    // Deleted events of dangling-logic cleanup)
                    _ => {
                        let a = Signal::new(target, rng.gen_bool());
                        let pis = ntk.pi_nodes();
                        let b = Signal::new(pis[rng.gen_range(pis.len())], rng.gen_bool());
                        let g = ntk.create_and(a, b);
                        if ntk.is_gate(g.node()) && ntk.fanout_size(g.node()) == 0 {
                            ntk.take_out_node(g.node());
                        }
                    }
                }
                // drain + refresh, then compare against a fresh manager
                ntk.drain_changes(&mut log);
                mgr.refresh_from(&ntk, &log);
                log.clear();
                let mut fresh = CutManager::new(params);
                assert_eq!(
                    cut_snapshot(&ntk, &mut mgr),
                    cut_snapshot(&ntk, &mut fresh),
                    "{} case {case}, step {step}: refreshed manager diverged",
                    N::NAME
                );
                assert!(check_network_integrity(&ntk).is_ok());
            }
            ntk.set_change_tracking(false);
        }
    }
    let mut rng = Rng::seed_from_u64(0x150c);
    check(|rng| arbitrary_network(rng, 5, 30), &mut rng, 6);
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..25 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        5,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..25 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(2) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        5,
    );
}

/// Incremental rewriting (change-log refresh) and full recomputation
/// (manager rebuilt after every substitution) are bit-identical passes on
/// random networks — and incremental re-enumerates no more nodes.
#[test]
fn incremental_rewriting_equals_full_recompute_on_random_networks() {
    let mut rng = Rng::seed_from_u64(0x150d);
    for case in 0..8 {
        let aig = arbitrary_network(&mut rng, 6, 45);
        for zero_gain in [false, true] {
            let params = RewriteParams {
                allow_zero_gain: zero_gain,
                ..RewriteParams::default()
            };
            let mut incremental = aig.clone();
            let inc = rewrite(&mut incremental, &params);
            let mut full = aig.clone();
            let fll = rewrite(
                &mut full,
                &RewriteParams {
                    cut_maintenance: CutMaintenance::FullRecompute,
                    ..params
                },
            );
            assert_eq!(inc.substitutions, fll.substitutions, "case {case}");
            assert_eq!(inc.estimated_gain, fll.estimated_gain, "case {case}");
            assert_eq!(incremental.num_gates(), full.num_gates(), "case {case}");
            assert_eq!(incremental.po_signals(), full.po_signals(), "case {case}");
            assert!(
                inc.cuts.reenumerated_nodes <= fll.cuts.reenumerated_nodes,
                "case {case}: {:?} vs {:?}",
                inc.cuts,
                fll.cuts
            );
            assert!(equivalent_by_simulation(&aig, &incremental), "case {case}");
        }
    }
}

/// Incremental sweeping classes match the full re-sort every round on
/// random signature-collision-heavy networks: identical pairs, proofs,
/// merges and final networks.
#[test]
fn incremental_sweeping_classes_match_full_resort() {
    let mut rng = Rng::seed_from_u64(0x150e);
    for case in 0..6 {
        // wide input space + a single pattern word force collisions and
        // therefore real counterexample-refinement rounds
        let aig = arbitrary_network(&mut rng, 14, 60);
        let params = SweepParams {
            num_words: 1,
            seed: 0x5eed + case,
            ..SweepParams::default()
        };
        let mut incremental = aig.clone();
        let inc = sweep(&mut incremental, &params);
        let mut full = aig.clone();
        let fll = sweep(
            &mut full,
            &SweepParams {
                incremental_classes: false,
                ..params
            },
        );
        assert_eq!(inc.rounds, fll.rounds, "case {case}");
        assert_eq!(inc.candidate_pairs, fll.candidate_pairs, "case {case}");
        assert_eq!(inc.proven, fll.proven, "case {case}");
        assert_eq!(inc.refuted, fll.refuted, "case {case}");
        assert_eq!(inc.skipped, fll.skipped, "case {case}");
        assert_eq!(inc.conflicts, fll.conflicts, "case {case}");
        assert_eq!(incremental.num_gates(), full.num_gates(), "case {case}");
        assert_eq!(incremental.po_signals(), full.po_signals(), "case {case}");
        assert!(
            inc.reclassed_nodes <= fll.reclassed_nodes,
            "case {case}: {inc:?} vs {fll:?}"
        );
        assert!(
            check_equivalence(&aig, &incremental).is_equivalent(),
            "case {case}"
        );
    }
}

/// Incremental area-flow refinement selects the same LUT cover as full
/// recomputation while evaluating fewer choices.
#[test]
fn incremental_lut_mapping_matches_full_recompute() {
    let mut rng = Rng::seed_from_u64(0x150f);
    for case in 0..6 {
        let aig = arbitrary_network(&mut rng, 6, 50);
        let incremental = LutMapParams {
            area_flow_rounds: 3,
            ..LutMapParams::with_lut_size(4)
        };
        let full = LutMapParams {
            full_recompute: true,
            ..incremental
        };
        let inc = lut_map_stats(&aig, &incremental);
        let fll = lut_map_stats(&aig, &full);
        assert_eq!(inc.num_luts, fll.num_luts, "case {case}");
        assert_eq!(inc.depth, fll.depth, "case {case}");
        assert!(
            inc.choice_evaluations < fll.choice_evaluations,
            "case {case}: {inc:?} vs {fll:?}"
        );
        let a = lut_map(&aig, &incremental);
        let b = lut_map(&aig, &full);
        assert_eq!(a.po_signals(), b.po_signals(), "case {case}");
        assert!(equivalent_by_simulation(&a, &b), "case {case}");
    }
}

/// Cut-merge invariants of the arena-backed cut substrate: results are
/// sorted and duplicate-free, the merge contains both operands (and hence
/// their intersection), and domination is a partial order.
#[test]
fn cut_merge_invariants() {
    let mut rng = Rng::seed_from_u64(0x1506);
    for _ in 0..256 {
        let la = arbitrary_leaves(&mut rng, 96, 6);
        let lb = arbitrary_leaves(&mut rng, 96, 6);
        let a = Cut::from_leaves(&la);
        let b = Cut::from_leaves(&lb);

        // construction canonicalises: sorted ascending, no duplicates
        assert!(a.leaves().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.leaves(), la.as_slice());

        if let Some(merged) = a.merge(&b, 8) {
            // sorted + deduped
            assert!(merged.leaves().windows(2).all(|w| w[0] < w[1]));
            // merge(a, b) ⊇ a and ⊇ b, hence ⊇ a ∩ b
            for l in a.leaves().iter().chain(b.leaves()) {
                assert!(merged.leaves().contains(l));
            }
            // and nothing else: merge(a, b) ⊆ a ∪ b
            for l in merged.leaves() {
                assert!(a.leaves().contains(l) || b.leaves().contains(l));
            }
            // the merged cut is dominated by both operands
            assert!(a.dominates(&merged));
            assert!(b.dominates(&merged));
        } else {
            // merge only fails when the union exceeds the size bound
            let mut union = [a.leaves(), b.leaves()].concat();
            union.sort_unstable();
            union.dedup();
            assert!(union.len() > 8);
        }

        // domination is reflexive and antisymmetric
        assert!(a.dominates(&a));
        if a.dominates(&b) && b.dominates(&a) {
            assert_eq!(a.leaves(), b.leaves());
        }
        // and transitive
        let lc = arbitrary_leaves(&mut rng, 96, 6);
        let c = Cut::from_leaves(&lc);
        if a.dominates(&b) && b.dominates(&c) {
            assert!(a.dominates(&c));
        }

        // semantics: dominates == subset-of-leaves
        let is_subset = a.leaves().iter().all(|l| b.leaves().contains(l));
        assert_eq!(a.dominates(&b), is_subset);
    }
}

/// The incremental depth view is bit-identical to its from-scratch twin:
/// under randomized substitution/deletion sequences (with change tracking
/// on), refreshing from the drained log reproduces `DepthView::new`'s
/// level for every live node and the same overall depth.
#[test]
fn incremental_depth_view_matches_from_scratch_twin() {
    use glsx::network::views::{DepthView, IncrementalDepthView};
    let mut rng = Rng::seed_from_u64(0xdeb7);
    for case in 0..12 {
        let mut aig = arbitrary_network(&mut rng, 6, 50);
        let mut view = IncrementalDepthView::new(&aig);
        let mut log = ChangeLog::new();
        aig.set_change_tracking(true);
        for step in 0..12 {
            let gates = aig.gate_nodes();
            if gates.is_empty() {
                break;
            }
            let node = gates[rng.gen_range(gates.len())];
            if rng.gen_bool() {
                // substitute by one of its fanins (always acyclic)
                let fanin = aig.fanin(node, rng.gen_range(aig.fanin_size(node)));
                aig.substitute_node(node, fanin.complement_if(rng.gen_bool()));
            } else {
                aig.take_out_node(node);
            }
            // occasionally grow fresh logic so new-node levelling is hit
            if rng.gen_range(3) == 0 {
                let gates = aig.gate_nodes();
                if !gates.is_empty() {
                    let a = Signal::new(gates[rng.gen_range(gates.len())], rng.gen_bool());
                    let b = Signal::new(aig.pi_nodes()[0], false);
                    let fresh = aig.create_and(a, b);
                    aig.create_po(fresh);
                }
            }
            aig.drain_changes(&mut log);
            view.refresh_from(&aig, &log);
            log.clear();
            let scratch = DepthView::new(&aig);
            for node in aig.node_ids() {
                assert_eq!(
                    view.level(node),
                    scratch.level(node),
                    "case {case}, step {step}, node {node}"
                );
            }
            assert_eq!(
                view.depth(&aig),
                scratch.depth(),
                "case {case}, step {step}"
            );
        }
        aig.set_change_tracking(false);
    }
}

/// Choice rings stay structurally consistent under randomized
/// substitute/delete sequences: members stay live and reachable from live
/// representatives, rings migrate across substitutions, and no node lands
/// in two rings — on top of ordinary network integrity.
#[test]
fn choice_rings_survive_randomized_mutations() {
    use glsx::network::views::check_choice_integrity;
    let mut rng = Rng::seed_from_u64(0xc1c1);
    for case in 0..10 {
        let mut aig = arbitrary_network(&mut rng, 6, 60);
        glsx::benchmarks::inject_redundancy(&mut aig, 4, 0xbead + case);
        let stats = sweep(
            &mut aig,
            &SweepParams {
                record_choices: true,
                ..SweepParams::default()
            },
        );
        if stats.choices_recorded == 0 {
            continue;
        }
        check_choice_integrity(&aig).unwrap();
        for step in 0..20 {
            let gates = aig.gate_nodes();
            if gates.is_empty() {
                break;
            }
            let node = gates[rng.gen_range(gates.len())];
            if rng.gen_bool() {
                let fanin = aig.fanin(node, rng.gen_range(aig.fanin_size(node)));
                aig.substitute_node(node, fanin.complement_if(rng.gen_bool()));
            } else {
                aig.take_out_node(node);
            }
            check_choice_integrity(&aig)
                .unwrap_or_else(|e| panic!("case {case}, step {step}: {e}"));
            check_network_integrity(&aig)
                .unwrap_or_else(|e| panic!("case {case}, step {step}: {e}"));
        }
        // clearing the rings releases the kept cones to ordinary cleanup
        aig.clear_choices();
        assert_eq!(aig.num_choice_nodes(), 0);
        check_network_integrity(&aig).unwrap();
    }
}

/// The choices-off/choices-on mapping contract on seeded networks with
/// injected redundancy, across representations: choices-off mapping of a
/// ringed network is bit-identical to mapping with the rings stripped
/// (the pre-choice mapper), and the choices-on mapped network is
/// miter-equivalent to the pre-sweep source while never using more LUTs.
#[test]
fn choice_mapping_contract_across_representations() {
    fn check<N>(build: impl Fn(&mut Rng) -> N, rng: &mut Rng, cases: u32) -> usize
    where
        N: Network + glsx::network::GateBuilder + Clone,
    {
        let mut wins = 0usize;
        for case in 0..cases {
            let mut ntk = build(rng);
            glsx::benchmarks::inject_redundancy(&mut ntk, 3, 0x0a17 + u64::from(case));
            glsx::benchmarks::inject_restructured(&mut ntk, 3, 0x1a17 + u64::from(case));
            let source = ntk.clone();
            let stats = sweep(
                &mut ntk,
                &SweepParams {
                    record_choices: true,
                    ..SweepParams::default()
                },
            );
            let params_off = LutMapParams::with_lut_size(4);
            let params_on = LutMapParams {
                use_choices: true,
                ..params_off
            };
            // choices-off is blind to the rings
            let mut stripped = ntk.clone();
            stripped.clear_choices();
            let klut_off = lut_map(&ntk, &params_off);
            let klut_stripped = lut_map(&stripped, &params_off);
            assert_eq!(
                klut_off.po_signals(),
                klut_stripped.po_signals(),
                "{}: case {case}: rings leaked into the choices-off mapper",
                N::NAME
            );
            assert_eq!(klut_off.num_gates(), klut_stripped.num_gates());
            // choices-on: proven equivalent, never more LUTs
            let klut_on = lut_map(&ntk, &params_on);
            assert!(
                check_equivalence(&source, &klut_on).is_equivalent(),
                "{}: case {case}: choice-aware mapping broke the function \
                 ({stats:?})",
                N::NAME
            );
            assert!(
                klut_on.num_gates() <= klut_off.num_gates(),
                "{}: case {case}: choices cost LUTs ({} > {})",
                N::NAME,
                klut_on.num_gates(),
                klut_off.num_gates()
            );
            let on_stats = lut_map_stats(&ntk, &params_on);
            wins += on_stats.choice_wins;
        }
        wins
    }
    let mut rng = Rng::seed_from_u64(0xc0f3);
    let aig_wins = check(|rng| arbitrary_network(rng, 6, 60), &mut rng, 8);
    let _ = aig_wins;
    // XAG and MIG exercise the generic paths (XOR gates, MAJ gates with
    // constant fanins) through the same contract
    check(|rng| arbitrary_xag(rng, 6, 50), &mut rng, 6);
    check(|rng| arbitrary_mig(rng, 6, 40), &mut rng, 6);
}

/// The parallel-execution contract: at every thread count the
/// level-partitioned word simulator, the bulk cut enumerator, the phased
/// sweep schedule and the portfolio runner return results bit-identical
/// to the serial run, on arbitrary networks in every representation.
#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    use glsx::flow::{portfolio_best_luts, FlowOptions};
    use glsx::network::wordsim::WordSimulator;
    use glsx::network::Parallelism;

    const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

    // data parallelism: word simulation and bulk cut enumeration
    fn check_data_parallel<N: Network>(ntk: &N, label: &str) {
        let reference = WordSimulator::random_with(ntk, 4, 0xfeed, Parallelism::serial());
        let params = CutParams {
            cut_size: 4,
            cut_limit: 8,
            compute_truth: true,
        };
        let mut serial_mgr = CutManager::new(params);
        serial_mgr.enumerate(ntk, Parallelism::serial());
        let serial_cuts = cut_snapshot(ntk, &mut serial_mgr);
        for threads in THREAD_COUNTS {
            let sim = WordSimulator::random_with(ntk, 4, 0xfeed, Parallelism::new(threads));
            for w in 0..reference.num_words() {
                for &node in ntk.node_ids().iter() {
                    assert_eq!(
                        sim.word(w, node),
                        reference.word(w, node),
                        "{label}: word {w} of node {node} diverged at {threads} threads"
                    );
                }
            }
            let mut mgr = CutManager::new(params);
            mgr.enumerate(ntk, Parallelism::new(threads));
            assert_eq!(
                mgr.arena_len(),
                serial_mgr.arena_len(),
                "{label}: cut arena diverged at {threads} threads"
            );
            assert_eq!(
                cut_snapshot(ntk, &mut mgr),
                serial_cuts,
                "{label}: cut sets diverged at {threads} threads"
            );
        }
    }

    // pass parallelism: the phased sweep schedule proves candidate classes
    // on independent per-thread miters and must be thread-count invariant
    fn check_phased_sweep<N: Network + Clone>(ntk: &N, label: &str) {
        let phased_params = |threads| SweepParams {
            num_words: 1,
            parallel_proving: Some(Parallelism::new(threads)),
            ..SweepParams::default()
        };
        let mut baseline = N::clone(ntk);
        let baseline_stats = sweep(&mut baseline, &phased_params(1));
        assert!(
            check_equivalence(ntk, &baseline).is_equivalent(),
            "{label}: phased sweep changed the function"
        );
        for threads in &THREAD_COUNTS[1..] {
            let mut swept = N::clone(ntk);
            let stats = sweep(&mut swept, &phased_params(*threads));
            assert_eq!(
                stats, baseline_stats,
                "{label}: sweep stats diverged at {threads} threads"
            );
            assert_eq!(
                swept.num_gates(),
                baseline.num_gates(),
                "{label}: swept gate count diverged at {threads} threads"
            );
            assert_eq!(
                swept.po_signals(),
                baseline.po_signals(),
                "{label}: swept outputs diverged at {threads} threads"
            );
        }
        // the phased schedule is a different algorithm than the legacy
        // incremental-miter schedule, so the cross-check is semantic
        let mut legacy = N::clone(ntk);
        sweep(
            &mut legacy,
            &SweepParams {
                num_words: 1,
                ..SweepParams::default()
            },
        );
        assert!(
            check_equivalence(&legacy, &baseline).is_equivalent(),
            "{label}: phased and legacy sweeps disagree on the function"
        );
    }

    let mut rng = Rng::seed_from_u64(0x9a9_0006);
    for case in 0..4 {
        let aig = arbitrary_network(&mut rng, 8, 60);
        check_data_parallel(&aig, &format!("AIG case {case}"));
        check_phased_sweep(&aig, &format!("AIG case {case}"));

        let mut xag = Xag::new();
        let mut signals: Vec<Signal> = (0..8).map(|_| xag.create_pi()).collect();
        for _ in 0..50 {
            let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            signals.push(if rng.gen_bool() {
                xag.create_and(x, y)
            } else {
                xag.create_xor(x, y)
            });
        }
        for s in signals.iter().rev().take(3) {
            xag.create_po(*s);
        }
        check_data_parallel(&xag, &format!("XAG case {case}"));
        check_phased_sweep(&xag, &format!("XAG case {case}"));

        let mut mig = Mig::new();
        let mut signals: Vec<Signal> = (0..8).map(|_| mig.create_pi()).collect();
        for _ in 0..40 {
            let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let z = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            signals.push(mig.create_maj(x, y, z));
        }
        for s in signals.iter().rev().take(3) {
            mig.create_po(*s);
        }
        check_data_parallel(&mig, &format!("MIG case {case}"));
        check_phased_sweep(&mig, &format!("MIG case {case}"));
    }

    // pass parallelism: the portfolio runs one representation per thread
    // and joins in fixed order, so the result is bit-identical to serial
    let aig = arbitrary_network(&mut rng, 6, 40);
    let serial = portfolio_best_luts(
        &aig,
        &FlowOptions {
            parallelism: Parallelism::serial(),
            ..FlowOptions::default()
        },
        4,
    );
    for threads in THREAD_COUNTS {
        let parallel = portfolio_best_luts(
            &aig,
            &FlowOptions {
                parallelism: Parallelism::new(threads),
                ..FlowOptions::default()
            },
            4,
        );
        assert_eq!(parallel, serial, "portfolio diverged at {threads} threads");
    }
}

/// The windowed parallel rewriting contract: at 1, 2 and 4 threads the
/// result is miter-proven equivalent to the input, never worse in gate
/// count than the serial pass (bit-identical to it, in fact — the serial
/// pass is the verified twin), and bit-identical across repeated runs at
/// the same thread count — on AIGs, XAGs and MIGs.
#[test]
fn windowed_rewrite_matches_serial() {
    use glsx::algorithms::rewriting::rewrite_with;
    use glsx::algorithms::windowed::rewrite_windowed;
    use glsx::network::Parallelism;
    use glsx::synth::NpnDatabase;

    fn check<N: Network + GateBuilder + Clone>(source: &N, label: &str) {
        for zero_gain in [false, true] {
            let params = RewriteParams {
                allow_zero_gain: zero_gain,
                ..RewriteParams::default()
            };
            let mut serial = source.clone();
            rewrite_with(&mut serial, &mut NpnDatabase::new(), &params);
            let serial_print = network_fingerprint(&serial);
            for threads in [1usize, 2, 4] {
                let mut windowed = source.clone();
                let stats = rewrite_windowed(
                    &mut windowed,
                    &mut NpnDatabase::new(),
                    &params,
                    Parallelism::new(threads),
                );
                assert!(
                    check_equivalence(source, &windowed).is_equivalent(),
                    "{label}: windowed pass at {threads} threads is not miter-equivalent"
                );
                assert!(
                    windowed.num_gates() <= serial.num_gates(),
                    "{label}: windowed pass at {threads} threads cost gates \
                     ({} vs {} serial)",
                    windowed.num_gates(),
                    serial.num_gates()
                );
                assert_eq!(
                    network_fingerprint(&windowed),
                    serial_print,
                    "{label}: windowed pass at {threads} threads diverged from serial"
                );
                // re-running at the same thread count is bit-identical,
                // stats included
                let mut again = source.clone();
                let stats_again = rewrite_windowed(
                    &mut again,
                    &mut NpnDatabase::new(),
                    &params,
                    Parallelism::new(threads),
                );
                assert_eq!(
                    network_fingerprint(&again),
                    network_fingerprint(&windowed),
                    "{label}: repeated windowed run at {threads} threads diverged"
                );
                assert_eq!(stats, stats_again, "{label}: stats diverged on re-run");
                assert!(stats.windows.windows > 0, "{label}: no windows carved");
                assert!(
                    stats.windows.confirmed + stats.windows.invalidated + stats.windows.rejected
                        <= stats.windows.proposed,
                    "{label}: window accounting inconsistent: {:?}",
                    stats.windows
                );
            }
        }
    }

    let mut rng = Rng::seed_from_u64(0x11d0_0001);
    for case in 0..3 {
        check(
            &arbitrary_network(&mut rng, 6, 60),
            &format!("AIG case {case}"),
        );
        check(&arbitrary_xag(&mut rng, 6, 50), &format!("XAG case {case}"));
        check(&arbitrary_mig(&mut rng, 5, 40), &format!("MIG case {case}"));
    }
}

/// Interface-plus-structure fingerprint used to assert bit-identical
/// checkpoint restoration: node-table size, live gate count, PO signals
/// and every gate's exact fanin list.
type NetworkFingerprint = (usize, usize, Vec<Signal>, Vec<(NodeId, Vec<Signal>)>);

fn network_fingerprint<N: Network>(ntk: &N) -> NetworkFingerprint {
    (
        ntk.size(),
        ntk.num_gates(),
        ntk.po_signals(),
        ntk.gate_nodes()
            .into_iter()
            .map(|n| (n, ntk.fanins(n)))
            .collect(),
    )
}

/// Checkpoint property: snapshot → arbitrary mutation burst → restore is
/// bit-identical to the pre-snapshot network (same for the cheaper undo
/// journal), on all three graph representations, and the restored
/// network passes the full structural audit (strash + choice rings).
#[test]
fn checkpoints_restore_bit_identical_networks() {
    fn check<N: Network + GateBuilder + Clone>(
        build: impl Fn(&mut Rng) -> N,
        rng: &mut Rng,
        cases: u32,
    ) {
        for case in 0..cases {
            let mut ntk = build(rng);
            let reference = network_fingerprint(&ntk);
            // full snapshot
            let snapshot = ntk.snapshot();
            glsx::benchmarks::inject_redundancy(&mut ntk, 3, 0xf00d + case as u64);
            sweep(&mut ntk, &SweepParams::default());
            balance(&mut ntk, &BalanceParams::default());
            ntk.restore(&snapshot);
            assert_eq!(
                network_fingerprint(&ntk),
                reference,
                "{} case {case}: snapshot restore is not bit-identical",
                N::NAME
            );
            assert!(
                check_network_integrity(&ntk).is_ok(),
                "{} case {case}: restored network fails the structural audit",
                N::NAME
            );
            // undo journal
            ntk.begin_undo();
            glsx::benchmarks::inject_redundancy(&mut ntk, 3, 0xfeed + case as u64);
            sweep(&mut ntk, &SweepParams::default());
            balance(&mut ntk, &BalanceParams::default());
            assert!(
                ntk.rollback_undo(),
                "{} case {case}: journal vanished",
                N::NAME
            );
            assert_eq!(
                network_fingerprint(&ntk),
                reference,
                "{} case {case}: journal rollback is not bit-identical",
                N::NAME
            );
            assert!(
                check_network_integrity(&ntk).is_ok(),
                "{} case {case}: rolled-back network fails the structural audit",
                N::NAME
            );
        }
    }

    let mut rng = Rng::seed_from_u64(0x1515);
    check(|rng| arbitrary_network(rng, 6, 40), &mut rng, 6);
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        4,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(3) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        4,
    );
}

/// Never-corrupt contract: the guarded executor stays miter-equivalent
/// to its input under *any* fault plan — random panics, exhaustions and
/// starved verifications at random sites, with both rollback strategies,
/// on all three graph representations.
#[test]
fn guarded_flows_survive_arbitrary_fault_plans() {
    use glsx::algorithms::resubstitution::ResubNetwork;
    use glsx::flow::{
        run_script_guarded, FaultPlan, FlowOptions, FlowScript, GuardOptions, RollbackStrategy,
        StepStatus, VerifyMode,
    };

    fn arbitrary_fault_plan(rng: &mut Rng) -> FaultPlan {
        let mut entries = Vec::new();
        for site in ["balance", "rewrite", "refactor", "resub", "fraig"] {
            if rng.gen_bool() {
                let action = if rng.gen_bool() { "panic" } else { "exhaust" };
                entries.push(format!("{action}@{site}:{}", 1 + rng.gen_range(2)));
            }
        }
        if rng.gen_bool() {
            entries.push(format!("unknown@verify:{}", 1 + rng.gen_range(5)));
        }
        FaultPlan::parse(&entries.join(",")).expect("generated plans are well-formed")
    }

    fn check<N: Network + GateBuilder + ResubNetwork + Clone>(
        build: impl Fn(&mut Rng) -> N,
        rng: &mut Rng,
        cases: u32,
    ) {
        let script = FlowScript::parse("bz; rw; rs -c 6; fraig; rf; rwz").unwrap();
        for case in 0..cases {
            let source = build(rng);
            let plan = arbitrary_fault_plan(rng);
            for rollback in [RollbackStrategy::Snapshot, RollbackStrategy::Journal] {
                let mut ntk = source.clone();
                let report = run_script_guarded(
                    &mut ntk,
                    &script,
                    &FlowOptions::default(),
                    &GuardOptions {
                        rollback,
                        verify: VerifyMode::Miter,
                        fault_plan: plan.clone(),
                        ..GuardOptions::default()
                    },
                );
                assert_eq!(
                    report.final_verify,
                    Some(true),
                    "{} case {case} plan `{plan}` {rollback:?}: final miter not green: {report:?}",
                    N::NAME
                );
                assert!(
                    check_equivalence(&source, &ntk).is_equivalent(),
                    "{} case {case} plan `{plan}` {rollback:?}: output diverged from input",
                    N::NAME
                );
                assert!(
                    check_network_integrity(&ntk).is_ok(),
                    "{} case {case} plan `{plan}` {rollback:?}: corrupt output network",
                    N::NAME
                );
                assert!(
                    report.steps.iter().all(|s| s.status != StepStatus::Skipped),
                    "{} case {case}: no deadline was set, nothing may be skipped",
                    N::NAME
                );
                assert_eq!(
                    report.committed + report.rollbacks,
                    script.steps().len(),
                    "{} case {case} plan `{plan}` {rollback:?}: steps unaccounted for: {report:?}",
                    N::NAME
                );
            }
        }
    }

    let mut rng = Rng::seed_from_u64(0x1516);
    check(|rng| arbitrary_network(rng, 6, 40), &mut rng, 4);
    check(
        |rng| {
            let mut xag = Xag::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| xag.create_pi()).collect();
            for step in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(if step % 3 == 0 {
                    xag.create_xor(a, b)
                } else {
                    xag.create_and(a, b)
                });
            }
            for s in signals.iter().rev().take(3) {
                xag.create_po(*s);
            }
            xag
        },
        &mut rng,
        2,
    );
    check(
        |rng| {
            let mut mig = Mig::new();
            let mut signals: Vec<Signal> = (0..5).map(|_| mig.create_pi()).collect();
            for _ in 0..30 {
                let a = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let b = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                let c = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
                signals.push(mig.create_maj(a, b, c));
            }
            for s in signals.iter().rev().take(3) {
                mig.create_po(*s);
            }
            mig
        },
        &mut rng,
        2,
    );
}

/// The telemetry contract: tracing is observational only.  A flow run
/// under a spans / counters / full tracer is bit-identical to the
/// untraced run on arbitrary seeded networks in every representation,
/// and the spans it records are well-nested on every lane.
#[test]
fn traced_flows_are_bit_identical_to_untraced() {
    use glsx::algorithms::resubstitution::ResubNetwork;
    use glsx::flow::{run_script_traced, FlowOptions, FlowScript};
    use glsx::network::telemetry::{spans_well_nested, TraceMode, Tracer};

    fn check<N>(ntk: &N, label: &str)
    where
        N: Network + GateBuilder + ResubNetwork + Clone,
    {
        let script = FlowScript::parse("bz; rw; rs -c 6; rf; fraig; rwz").unwrap();
        let options = FlowOptions::default();
        let mut untraced = N::clone(ntk);
        let untraced_stats = run_script_traced(&mut untraced, &script, &options, &Tracer::off());
        for mode in [TraceMode::Spans, TraceMode::Counters, TraceMode::Full] {
            let tracer = Tracer::new(mode);
            let mut traced = N::clone(ntk);
            let stats = run_script_traced(&mut traced, &script, &options, &tracer);
            assert_eq!(
                stats.substitutions, untraced_stats.substitutions,
                "{label}: {mode:?} tracing changed the flow"
            );
            assert_eq!(
                traced.num_gates(),
                untraced.num_gates(),
                "{label}: {mode:?} tracing changed the gate count"
            );
            assert_eq!(
                traced.po_signals(),
                untraced.po_signals(),
                "{label}: {mode:?} tracing changed the outputs"
            );
            assert!(
                spans_well_nested(&tracer.events()),
                "{label}: {mode:?} spans are not well-nested"
            );
        }
    }

    let mut rng = Rng::seed_from_u64(0x7e1e);
    for case in 0..3 {
        let aig = arbitrary_network(&mut rng, 6, 50);
        check(&aig, &format!("AIG case {case}"));

        let mut xag = Xag::new();
        let mut signals: Vec<Signal> = (0..6).map(|_| xag.create_pi()).collect();
        for _ in 0..40 {
            let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            signals.push(if rng.gen_bool() {
                xag.create_and(x, y)
            } else {
                xag.create_xor(x, y)
            });
        }
        for s in signals.iter().rev().take(3) {
            xag.create_po(*s);
        }
        check(&xag, &format!("XAG case {case}"));

        let mut mig = Mig::new();
        let mut signals: Vec<Signal> = (0..6).map(|_| mig.create_pi()).collect();
        for _ in 0..30 {
            let x = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let y = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            let z = signals[rng.gen_range(signals.len())].complement_if(rng.gen_bool());
            signals.push(mig.create_maj(x, y, z));
        }
        for s in signals.iter().rev().take(3) {
            mig.create_po(*s);
        }
        check(&mig, &format!("MIG case {case}"));
    }
}

/// The million-gate-ingest contract on arbitrary small networks: the
/// strash-free bulk load reproduces the robust per-gate replay bit for
/// bit, a GBC round-trip reproduces the dense streamed form bit for bit
/// (and re-serialises to the very same bytes), and binary AIGER
/// round-trips re-serialise byte-identically while preserving the
/// Boolean function.  Random networks may contain structurally folded
/// duplicates, so everything is compared against the dense form produced
/// by [`NetworkSource`]'s renumbering stream, not the raw source.
#[test]
fn streaming_io_round_trips_bit_identically() {
    use glsx::io::{
        read_aiger, read_gbc, transfer, write_aiger_binary, write_gbc, BuilderSink, NetworkSink,
        NetworkSource,
    };
    use glsx::network::BulkTarget;

    fn assert_identical<N: Network>(a: &N, b: &N, what: &str) {
        assert_eq!(a.size(), b.size(), "{what}: node count");
        assert_eq!(a.num_pis(), b.num_pis(), "{what}: PI count");
        assert_eq!(a.num_gates(), b.num_gates(), "{what}: gate count");
        assert_eq!(a.po_signals(), b.po_signals(), "{what}: PO signals");
        for node in a.gate_nodes() {
            assert_eq!(
                a.gate_kind(node),
                b.gate_kind(node),
                "{what}: kind of {node}"
            );
            assert_eq!(a.fanins(node), b.fanins(node), "{what}: fanins of {node}");
        }
    }

    fn check<N: Network + BulkTarget>(original: &N, what: &str) {
        // bulk load and per-gate replay of the same record stream
        let (bulk, _depth) =
            transfer(&mut NetworkSource::new(original), NetworkSink::<N>::new()).unwrap();
        let per_node: N = transfer(&mut NetworkSource::new(original), BuilderSink::new()).unwrap();
        assert!(
            check_network_integrity(&bulk).is_ok(),
            "{what}: bulk integrity"
        );
        assert!(
            check_network_integrity(&per_node).is_ok(),
            "{what}: per-node integrity"
        );
        assert_identical(&bulk, &per_node, &format!("{what}: bulk vs per-node"));
        assert!(
            equivalent_by_simulation(original, &bulk),
            "{what}: bulk load changed the function"
        );
        // GBC round-trip: the read-back network matches the dense form
        // bit for bit and re-serialises to the very same bytes
        let bytes = write_gbc(original).unwrap();
        let (back, _view) = read_gbc::<N>(&bytes).unwrap();
        assert!(
            check_network_integrity(&back).is_ok(),
            "{what}: GBC integrity"
        );
        assert_identical(&bulk, &back, &format!("{what}: GBC read-back"));
        assert_eq!(
            write_gbc(&back).unwrap(),
            bytes,
            "{what}: GBC re-serialisation"
        );
    }

    let mut rng = Rng::seed_from_u64(0x10_c057);
    for case in 0..10 {
        let aig = arbitrary_network(&mut rng, 4 + case % 4, 25 + 5 * case);
        check(&aig, &format!("AIG case {case}"));

        // binary AIGER is AIG-only; the writer normalises the rhs order
        // of every AND, so the node tables may legally differ from the
        // source — the contract is byte-identical re-serialisation plus
        // an unchanged Boolean function
        let bytes = write_aiger_binary(&aig);
        let back = read_aiger(&bytes).unwrap();
        assert_eq!(back.num_pis(), aig.num_pis(), "AIG case {case}: PI count");
        assert_eq!(back.num_pos(), aig.num_pos(), "AIG case {case}: PO count");
        assert_eq!(
            write_aiger_binary(&back),
            bytes,
            "AIG case {case}: binary AIGER re-serialisation"
        );
        assert!(
            equivalent_by_simulation(&aig, &back),
            "AIG case {case}: binary AIGER changed the function"
        );
    }
    for case in 0..8 {
        check(
            &arbitrary_xag(&mut rng, 5, 30 + 4 * case),
            &format!("XAG case {case}"),
        );
        check(
            &arbitrary_mig(&mut rng, 5, 25 + 4 * case),
            &format!("MIG case {case}"),
        );
    }
}
