//! Property-based tests on the core data structures and the key
//! invariants of the optimisation algorithms: every transformation must
//! preserve the Boolean function of the network and maintain structural
//! integrity, for arbitrary randomly generated networks.

use glsx::algorithms::balancing::{balance, BalanceParams};
use glsx::algorithms::lut_mapping::{lut_map, LutMapParams};
use glsx::algorithms::refactoring::{refactor, RefactorParams};
use glsx::algorithms::resubstitution::{resubstitute, ResubParams};
use glsx::algorithms::rewriting::{rewrite, RewriteParams};
use glsx::network::simulation::{equivalent_by_simulation, simulate};
use glsx::network::views::check_network_integrity;
use glsx::network::{Aig, GateBuilder, Mig, Network, Signal, Xag};
use glsx::truth::{isop, npn_canonize, TruthTable};
use proptest::prelude::*;

/// Strategy generating a random AIG over `num_pis` inputs.
fn arbitrary_network(num_pis: usize, num_steps: usize) -> impl Strategy<Value = Aig> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>(), any::<bool>()), num_steps)
        .prop_map(move |steps| {
            let mut aig = Aig::new();
            let mut signals: Vec<Signal> = (0..num_pis).map(|_| aig.create_pi()).collect();
            for (a, b, ca, cb) in steps {
                let x = signals[a as usize % signals.len()].complement_if(ca);
                let y = signals[b as usize % signals.len()].complement_if(cb);
                signals.push(aig.create_and(x, y));
            }
            for s in signals.iter().rev().take(3) {
                aig.create_po(*s);
            }
            aig
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truth-table invariant: an ISOP cover always reproduces its function.
    #[test]
    fn isop_covers_are_exact(bits in any::<u64>()) {
        let tt = TruthTable::from_words(6, vec![bits]);
        prop_assert_eq!(isop(&tt).to_truth_table(), tt);
    }

    /// NPN canonisation is a class invariant: transforming the function and
    /// canonising again yields the same representative.
    #[test]
    fn npn_canonisation_is_invariant(bits in any::<u16>(), neg in 0u32..16, out in any::<bool>()) {
        let tt = TruthTable::from_bits(4, bits as u64);
        let (canon, transform) = npn_canonize(&tt);
        prop_assert_eq!(transform.apply(&tt), canon.clone());
        // apply an arbitrary extra NPN transformation and re-canonise
        let mut member = tt;
        for v in 0..4 {
            if (neg >> v) & 1 == 1 {
                member = member.flip(v);
            }
        }
        if out {
            member = !member;
        }
        let (canon2, _) = npn_canonize(&member);
        prop_assert_eq!(canon, canon2);
    }

    /// All four optimisations preserve the function of random AIGs and keep
    /// the network structurally sound.
    #[test]
    fn optimisations_preserve_functions(aig in arbitrary_network(5, 30)) {
        let reference = aig.clone();

        let mut rewritten = aig.clone();
        rewrite(&mut rewritten, &RewriteParams::default());
        prop_assert!(check_network_integrity(&rewritten).is_ok());
        prop_assert!(equivalent_by_simulation(&reference, &rewritten));
        prop_assert!(rewritten.num_gates() <= reference.num_gates());

        let mut refactored = aig.clone();
        refactor(&mut refactored, &RefactorParams::default());
        prop_assert!(check_network_integrity(&refactored).is_ok());
        prop_assert!(equivalent_by_simulation(&reference, &refactored));
        prop_assert!(refactored.num_gates() <= reference.num_gates());

        let mut resubstituted = aig.clone();
        resubstitute(&mut resubstituted, &ResubParams::default());
        prop_assert!(check_network_integrity(&resubstituted).is_ok());
        prop_assert!(equivalent_by_simulation(&reference, &resubstituted));
        prop_assert!(resubstituted.num_gates() <= reference.num_gates());

        let mut balanced = aig.clone();
        balance(&mut balanced, &BalanceParams::default());
        prop_assert!(check_network_integrity(&balanced).is_ok());
        prop_assert!(equivalent_by_simulation(&reference, &balanced));
        prop_assert!(balanced.num_gates() <= reference.num_gates());
    }

    /// LUT mapping preserves functions and respects the LUT size.
    #[test]
    fn lut_mapping_preserves_functions(aig in arbitrary_network(6, 40), k in 3usize..7) {
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(k));
        prop_assert!(klut.max_fanin_size() <= k);
        prop_assert!(equivalent_by_simulation(&aig, &klut));
    }

    /// Structural conversion between representations preserves functions.
    #[test]
    fn conversion_preserves_functions(aig in arbitrary_network(5, 25)) {
        let mig: Mig = glsx::network::convert_network(&aig);
        let xag: Xag = glsx::network::convert_network(&aig);
        prop_assert_eq!(simulate(&aig), simulate(&mig));
        prop_assert_eq!(simulate(&aig), simulate(&xag));
    }
}
