//! Cross-crate integration tests: the full optimisation flow, LUT mapping
//! and I/O on generated benchmark circuits, checked for functional
//! correctness by simulation.

use glsx::algorithms::lut_mapping::{lut_map, LutMapParams};
use glsx::benchmarks::{epfl_like_suite, SuiteScale};
use glsx::flow::{compress2rs, run_script, FlowOptions, FlowScript};
use glsx::io::{read_aiger, write_aiger, write_blif};
use glsx::network::simulation::{equivalent_by_random_simulation, equivalent_by_simulation};
use glsx::network::{convert_network, Aig, Mig, Xag};

/// The full generic flow preserves functionality on every benchmark of the
/// tiny suite, in every representation, and never increases the size.
#[test]
fn flow_is_sound_on_the_tiny_suite() {
    for benchmark in epfl_like_suite(SuiteScale::Tiny) {
        let aig = &benchmark.network;

        let mut opt_aig = aig.clone();
        let stats = compress2rs(&mut opt_aig, &FlowOptions::default());
        assert!(
            stats.final_size <= stats.initial_size,
            "{}: AIG flow grew the network",
            benchmark.name
        );
        assert!(
            equivalent_by_random_simulation(aig, &opt_aig, 8, 0xA1),
            "{}: AIG flow broke the function",
            benchmark.name
        );

        let mut opt_mig: Mig = convert_network(aig);
        compress2rs(&mut opt_mig, &FlowOptions::default());
        assert!(
            equivalent_by_random_simulation(aig, &opt_mig, 8, 0xA2),
            "{}: MIG flow broke the function",
            benchmark.name
        );

        let mut opt_xag: Xag = convert_network(aig);
        compress2rs(&mut opt_xag, &FlowOptions::default());
        assert!(
            equivalent_by_random_simulation(aig, &opt_xag, 8, 0xA3),
            "{}: XAG flow broke the function",
            benchmark.name
        );
    }
}

/// LUT mapping after optimisation preserves the function and respects the
/// LUT size for every benchmark of the tiny suite.
#[test]
fn mapping_is_sound_on_the_tiny_suite() {
    for benchmark in epfl_like_suite(SuiteScale::Tiny) {
        let mut aig = benchmark.network.clone();
        compress2rs(&mut aig, &FlowOptions::default());
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(6));
        assert!(klut.max_fanin_size() <= 6, "{}", benchmark.name);
        assert!(
            equivalent_by_random_simulation(&benchmark.network, &klut, 8, 0xB1),
            "{}: LUT mapping broke the function",
            benchmark.name
        );
    }
}

/// Custom flow scripts compose with I/O: optimise, export to AIGER, re-read
/// and check equivalence; export the mapped network to BLIF.
#[test]
fn scripts_and_io_compose() {
    let benchmark = glsx::benchmarks::benchmark_by_name("multiplier", SuiteScale::Tiny).unwrap();
    let mut aig: Aig = benchmark.network.clone();
    let script = FlowScript::parse("bz; rw; rs -c 8; rf; rwz").unwrap();
    run_script(&mut aig, &script, &FlowOptions::default());
    let text = write_aiger(&aig);
    let reread = read_aiger(&text).unwrap();
    assert!(equivalent_by_simulation(&aig, &reread));
    let klut = lut_map(&aig, &LutMapParams::with_lut_size(4));
    let blif = write_blif(&klut, "multiplier");
    assert!(blif.contains(".model multiplier"));
    assert!(blif.contains(".end"));
}

/// The portfolio never does worse than the individual representations.
#[test]
fn portfolio_dominates_single_representations() {
    let benchmark = glsx::benchmarks::benchmark_by_name("adder", SuiteScale::Tiny).unwrap();
    let result = glsx::flow::portfolio_best_luts(&benchmark.network, &FlowOptions::default(), 6);
    for luts in result.luts_per_representation {
        assert!(result.best_luts <= luts);
    }
}
