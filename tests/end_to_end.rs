//! Cross-crate integration tests: the full optimisation flow, LUT mapping
//! and I/O on generated benchmark circuits, checked for functional
//! correctness by simulation.

use glsx::algorithms::lut_mapping::{lut_map, LutMapParams};
use glsx::algorithms::sweeping::check_equivalence;
use glsx::benchmarks::{epfl_like_suite, inject_redundancy, SuiteScale};
use glsx::flow::{compress2rs, run_script, run_step, FlowOptions, FlowScript};
use glsx::io::{read_aiger, write_aiger, write_blif};
use glsx::network::simulation::{equivalent_by_random_simulation, equivalent_by_simulation};
use glsx::network::{convert_network, Aig, Mig, Xag};

/// The full generic flow preserves functionality on every benchmark of the
/// tiny suite, in every representation, and never increases the size.
#[test]
fn flow_is_sound_on_the_tiny_suite() {
    for benchmark in epfl_like_suite(SuiteScale::Tiny) {
        let aig = &benchmark.network;

        let mut opt_aig = aig.clone();
        let stats = compress2rs(&mut opt_aig, &FlowOptions::default());
        assert!(
            stats.final_size <= stats.initial_size,
            "{}: AIG flow grew the network",
            benchmark.name
        );
        assert!(
            equivalent_by_random_simulation(aig, &opt_aig, 8, 0xA1),
            "{}: AIG flow broke the function",
            benchmark.name
        );

        let mut opt_mig: Mig = convert_network(aig);
        compress2rs(&mut opt_mig, &FlowOptions::default());
        assert!(
            equivalent_by_random_simulation(aig, &opt_mig, 8, 0xA2),
            "{}: MIG flow broke the function",
            benchmark.name
        );

        let mut opt_xag: Xag = convert_network(aig);
        compress2rs(&mut opt_xag, &FlowOptions::default());
        assert!(
            equivalent_by_random_simulation(aig, &opt_xag, 8, 0xA3),
            "{}: XAG flow broke the function",
            benchmark.name
        );
    }
}

/// LUT mapping after optimisation preserves the function and respects the
/// LUT size for every benchmark of the tiny suite.
#[test]
fn mapping_is_sound_on_the_tiny_suite() {
    for benchmark in epfl_like_suite(SuiteScale::Tiny) {
        let mut aig = benchmark.network.clone();
        compress2rs(&mut aig, &FlowOptions::default());
        let klut = lut_map(&aig, &LutMapParams::with_lut_size(6));
        assert!(klut.max_fanin_size() <= 6, "{}", benchmark.name);
        assert!(
            equivalent_by_random_simulation(&benchmark.network, &klut, 8, 0xB1),
            "{}: LUT mapping broke the function",
            benchmark.name
        );
    }
}

/// Custom flow scripts compose with I/O: optimise, export to AIGER, re-read
/// and check equivalence; export the mapped network to BLIF.
#[test]
fn scripts_and_io_compose() {
    let benchmark = glsx::benchmarks::benchmark_by_name("multiplier", SuiteScale::Tiny).unwrap();
    let mut aig: Aig = benchmark.network.clone();
    let script = FlowScript::parse("bz; rw; rs -c 8; rf; rwz").unwrap();
    run_script(&mut aig, &script, &FlowOptions::default());
    let text = write_aiger(&aig);
    let reread = read_aiger(&text).unwrap();
    assert!(equivalent_by_simulation(&aig, &reread));
    let klut = lut_map(&aig, &LutMapParams::with_lut_size(4));
    let blif = write_blif(&klut, "multiplier");
    assert!(blif.contains(".model multiplier"));
    assert!(blif.contains(".end"));
}

/// Every optimisation pass of the representative flow is followed by a
/// miter-based equivalence check against its own input: the SAT-complete
/// end-to-end soundness guarantee (the former random-simulation assertion
/// could only refute, never prove).
#[test]
fn every_flow_step_is_miter_verified() {
    let benchmark = glsx::benchmarks::benchmark_by_name("multiplier", SuiteScale::Tiny).unwrap();
    let mut aig: Aig = benchmark.network.clone();
    inject_redundancy(&mut aig, 3, 0xE2E);
    let script = FlowScript::parse("fraig; bz; rw; rf; rs -c 8; rwz").unwrap();
    let options = FlowOptions::default();
    let mut fraig_merges = 0usize;
    for step in script.steps() {
        let input = aig.clone();
        let substitutions = run_step(&mut aig, step, &options);
        assert!(
            check_equivalence(&input, &aig).is_equivalent(),
            "step `{step:?}` broke combinational equivalence"
        );
        if matches!(step, glsx::flow::FlowStep::Fraig { .. }) {
            fraig_merges += substitutions;
        }
    }
    assert!(fraig_merges >= 1, "fraig merged no injected duplicates");
}

/// The full generic flow output is miter-proven equivalent to its input in
/// every representation (complementing the per-step check above).
#[test]
fn optimised_networks_are_miter_equivalent_to_their_sources() {
    let benchmark = glsx::benchmarks::benchmark_by_name("adder", SuiteScale::Tiny).unwrap();
    let aig = &benchmark.network;

    let mut opt_aig = aig.clone();
    compress2rs(&mut opt_aig, &FlowOptions::default());
    assert!(check_equivalence(aig, &opt_aig).is_equivalent());

    let mut opt_mig: Mig = convert_network(aig);
    compress2rs(&mut opt_mig, &FlowOptions::default());
    assert!(check_equivalence(aig, &opt_mig).is_equivalent());

    let mut opt_xag: Xag = convert_network(aig);
    compress2rs(&mut opt_xag, &FlowOptions::default());
    assert!(check_equivalence(aig, &opt_xag).is_equivalent());
}

/// The portfolio never does worse than the individual representations.
#[test]
fn portfolio_dominates_single_representations() {
    let benchmark = glsx::benchmarks::benchmark_by_name("adder", SuiteScale::Tiny).unwrap();
    let result = glsx::flow::portfolio_best_luts(&benchmark.network, &FlowOptions::default(), 6);
    for luts in result.luts_per_representation {
        assert!(result.best_luts <= luts);
    }
}
